"""Energy/latency co-optimization sanity (the paper's motivating setting)."""
import numpy as np
import pytest

from repro.nas import accuracy_table, pareto_front


class TestEnergyLatencyFronts:
    def test_fronts_differ_between_objectives(self, nb201_dataset):
        acc = accuracy_table(nb201_dataset.space)
        rng = np.random.default_rng(0)
        pool = rng.choice(15625, 1500, replace=False)
        lat = nb201_dataset.latency_of("pixel3", pool)
        eng = nb201_dataset.energy_of("pixel3", pool)
        lat_front = set(pool[pareto_front(lat, acc[pool])].tolist())
        eng_front = set(pool[pareto_front(eng, acc[pool])].tolist())
        # Correlated objectives -> overlapping but not identical fronts.
        assert lat_front != eng_front
        assert lat_front & eng_front

    def test_joint_budget_feasible_on_real_devices(self, nb201_dataset):
        rng = np.random.default_rng(1)
        pool = rng.choice(15625, 1000, replace=False)
        for device in ("pixel3", "eyeriss"):
            lat = nb201_dataset.latency_of(device, pool)
            eng = nb201_dataset.energy_of(device, pool)
            feasible = (lat <= np.quantile(lat, 0.3)) & (eng <= np.quantile(eng, 0.3))
            assert feasible.any(), device
