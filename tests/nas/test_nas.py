"""NAS components: accuracy surrogate, generator, search, Pareto."""
import numpy as np
import pytest

from repro.nas import (
    MetaD2ASimulator,
    accuracy_table,
    latency_constrained_search,
    pareto_front,
)
from repro.nas.pareto import dominates_fraction
from repro.nas.search import calibrate_to_ms


class TestAccuracySurrogate:
    def test_deterministic(self, nb201):
        np.testing.assert_allclose(accuracy_table(nb201), accuracy_table(nb201))

    def test_range(self, nb201):
        acc = accuracy_table(nb201)
        assert acc.min() >= 1.0 and acc.max() <= 77.0

    def test_dense_beats_empty(self, nb201):
        acc = accuracy_table(nb201)
        dense = nb201.index_from_spec(tuple([3] * 6))
        empty = nb201.index_from_spec(tuple([0] * 6))
        assert acc[dense] > acc[empty] + 10

    def test_dead_archs_near_floor(self, nb201):
        from repro.hardware.features import compute_features

        acc = accuracy_table(nb201)
        feats = compute_features(nb201)
        dead = feats.n_active == 0
        assert acc[dead].mean() < acc[~dead].mean() - 10


class TestMetaD2A:
    def test_candidates_biased_to_high_accuracy(self, nb201, rng):
        gen = MetaD2ASimulator(nb201)
        cand = gen.candidates(100, rng)
        acc = accuracy_table(nb201)
        assert acc[cand].mean() > np.median(acc) + 1.0

    def test_candidate_count_and_uniqueness(self, nb201, rng):
        cand = MetaD2ASimulator(nb201).candidates(50, rng)
        assert len(cand) == 50 and len(np.unique(cand)) == 50

    def test_invalid_n(self, nb201, rng):
        with pytest.raises(ValueError):
            MetaD2ASimulator(nb201).candidates(0, rng)


class TestCalibration:
    def test_monotone_map(self):
        scores = np.array([0.0, 1.0, 2.0])
        measured_scores = np.array([0.0, 1.0, 2.0, 3.0])
        measured_ms = np.exp(np.array([1.0, 2.0, 3.0, 4.0]))
        ms = calibrate_to_ms(scores, measured_scores, measured_ms)
        assert (np.diff(ms) > 0).all()
        np.testing.assert_allclose(ms, np.exp([1.0, 2.0, 3.0]), rtol=1e-6)

    def test_negative_slope_falls_back(self):
        scores = np.array([0.0, 1.0])
        ms = calibrate_to_ms(scores, np.array([2.0, 1.0]), np.array([1.0, 10.0]))
        assert ms[0] == pytest.approx(ms[1])  # constant fallback


class TestSearch:
    def test_constraint_steering(self, nb201_dataset, rng):
        """Tighter constraints must produce faster chosen architectures."""
        space = nb201_dataset.space
        gen = MetaD2ASimulator(space)
        device = "pixel3"
        lat = nb201_dataset.latencies(device)
        scorer = lambda idx: np.log(lat[np.asarray(idx, dtype=np.int64)])  # oracle scorer
        measured = rng.choice(15625, 20, replace=False)
        tight = latency_constrained_search(
            nb201_dataset, device, float(np.quantile(lat, 0.15)), gen, scorer, measured, rng, 1.0
        )
        loose = latency_constrained_search(
            nb201_dataset, device, float(np.quantile(lat, 0.9)), gen, scorer, measured, rng, 1.0
        )
        assert tight.latency_ms <= loose.latency_ms
        assert loose.accuracy >= tight.accuracy - 1.0  # looser budget, better archs

    def test_cost_accounting(self, nb201_dataset, rng):
        space = nb201_dataset.space
        gen = MetaD2ASimulator(space)
        lat = nb201_dataset.latencies("fpga")
        scorer = lambda idx: np.log(lat[np.asarray(idx, dtype=np.int64)])
        measured = rng.choice(15625, 20, replace=False)
        res = latency_constrained_search(
            nb201_dataset, "fpga", 10.0, gen, scorer, measured, rng, build_seconds=2.5
        )
        assert res.cost.n_samples == 20
        assert res.cost.sample_seconds == pytest.approx(20 * 3.0)  # fpga measure cost
        assert res.cost.build_seconds == 2.5
        assert res.cost.total_seconds > res.cost.sample_seconds


class TestPareto:
    def test_front_members_undominated(self):
        lat = np.array([1.0, 2.0, 3.0, 4.0])
        acc = np.array([60.0, 70.0, 65.0, 72.0])
        front = pareto_front(lat, acc)
        np.testing.assert_array_equal(front, [0, 1, 3])

    def test_duplicate_latencies(self):
        front = pareto_front(np.array([1.0, 1.0, 2.0]), np.array([60.0, 65.0, 64.0]))
        assert 1 in front and 2 not in front

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pareto_front(np.array([1.0]), np.array([1.0, 2.0]))

    def test_dominates_fraction(self):
        lat_a, acc_a = np.array([1.0, 2.0]), np.array([70.0, 75.0])
        lat_b, acc_b = np.array([1.5, 2.5]), np.array([65.0, 70.0])
        assert dominates_fraction(lat_a, acc_a, lat_b, acc_b) == 1.0
        assert dominates_fraction(lat_b, acc_b, lat_a, acc_a) == 0.0
