"""CLI surface: parsing, listings, and error paths (no heavy training)."""
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_transfer_args(self):
        args = build_parser().parse_args(["transfer", "--task", "N1", "--samples", "10"])
        assert args.task == "N1" and args.samples == 10 and args.sampler == "cosine-caz"

    def test_partition_args(self):
        args = build_parser().parse_args(
            ["partition", "--devices", "pixel3", "fpga", "--train-size", "1", "--test-size", "1"]
        )
        assert args.devices == ["pixel3", "fpga"]

    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--task", "N1", "--port", "0", "--max-batch", "32", "--max-wait-ms", "3"]
        )
        assert args.task == "N1" and args.port == 0
        assert args.max_batch == 32 and args.max_wait_ms == 3.0
        assert args.host == "127.0.0.1"
        assert args.compiled is True  # compiled serving is the default path

    def test_serve_no_compiled_escape_hatch(self):
        assert build_parser().parse_args(["serve", "--no-compiled"]).compiled is False
        assert build_parser().parse_args(["serve", "--compiled"]).compiled is True

    def test_compile_args(self):
        args = build_parser().parse_args(
            ["compile", "ckpt.npz", "--devices", "fpga", "eyeriss", "--buckets", "16", "30"]
        )
        assert args.checkpoint == "ckpt.npz"
        assert args.devices == ["fpga", "eyeriss"]
        assert args.buckets == [16, 30]
        assert args.out == "plans"

    def test_serve_plans_arg(self):
        args = build_parser().parse_args(["serve", "--checkpoint", "c.npz", "--plans", "plans/"])
        assert args.plans == "plans/"
        assert build_parser().parse_args(["serve", "--task", "N1"]).plans is None

    def test_serve_workers_arg(self):
        args = build_parser().parse_args(["serve", "--checkpoint", "c.npz", "--workers", "4"])
        assert args.workers == 4
        assert build_parser().parse_args(["serve", "--task", "N1"]).workers == 1

    def test_serve_data_plane_args(self):
        args = build_parser().parse_args(["serve", "--task", "N1"])
        assert args.wire == "rsf2"  # binary data plane is the default
        assert args.pipeline_depth == 2
        assert args.score_cache == 65536
        args = build_parser().parse_args(
            ["serve", "--task", "N1", "--wire", "rsf1", "--pipeline-depth", "1",
             "--score-cache", "0"]
        )
        assert args.wire == "rsf1"
        assert args.pipeline_depth == 1
        assert args.score_cache == 0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--task", "N1", "--wire", "grpc"])


class TestServeValidation:
    def test_requires_task_or_checkpoint(self, capsys):
        assert main(["serve"]) == 2
        assert "--task is required" in capsys.readouterr().err

    def test_plans_requires_checkpoint(self, capsys):
        assert main(["serve", "--task", "N1", "--plans", "plans/"]) == 2
        assert "--plans requires --checkpoint" in capsys.readouterr().err

    def test_workers_require_checkpoint(self, capsys):
        assert main(["serve", "--task", "N1", "--workers", "4"]) == 2
        assert "--workers > 1 requires --checkpoint" in capsys.readouterr().err


class TestListings:
    def test_tasks_lists_all(self, capsys):
        assert main(["tasks"]) == 0
        out = capsys.readouterr().out
        for name in ("ND", "N1", "FA"):
            assert name in out

    def test_devices_space_filter(self, capsys):
        assert main(["devices", "--space", "fbnet"]) == 0
        out = capsys.readouterr().out
        assert "eyeriss" in out and "edge_tpu_int8" not in out

    def test_devices_all(self, capsys):
        assert main(["devices"]) == 0
        assert "edge_tpu_int8" in capsys.readouterr().out


class TestNASValidation:
    def test_rejects_non_test_device(self, capsys):
        assert main(["nas", "--task", "ND", "--device", "pixel3"]) == 2
        assert "not a test device" in capsys.readouterr().err


class TestPartitionCommand:
    def test_partitions(self, capsys):
        devices = ["1080ti_1", "titanxp_1", "pixel3", "pixel2", "fpga", "eyeriss"]
        rc = main(
            ["partition", "--devices", *devices, "--train-size", "3", "--test-size", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("train:") == 1 and out.count("test:") == 1
