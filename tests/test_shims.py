"""Legacy entry points keep working through the registry/API redesign."""
import warnings

import numpy as np
import pytest


class TestImportsCleanly:
    def test_legacy_surface_imports_without_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro import NASFLATPipeline, PipelineConfig, get_space  # noqa: F401
            from repro.encodings import ENCODER_FACTORIES, get_encoding  # noqa: F401
            from repro.hardware.registry import DEVICE_REGISTRY, get_device  # noqa: F401
            from repro.samplers import make_sampler  # noqa: F401
            from repro.spaces.registry import _INSTANCES  # noqa: F401
            from repro.transfer.pipeline import quick_config  # noqa: F401


class TestSpaceShims:
    def test_get_space_is_registry_backed(self):
        from repro.spaces.registry import SPACES, get_space

        assert get_space("nasbench201") is SPACES.get("nasbench201")

    def test_instances_alias_is_live(self):
        from repro.spaces.registry import _INSTANCES, SPACES, get_space

        sentinel = object()
        _INSTANCES["shim-test-space"] = sentinel
        try:
            assert get_space("shim-test-space") is sentinel
        finally:
            del SPACES._instances["shim-test-space"]


class TestSamplerShims:
    def test_make_sampler_specs(self):
        from repro.samplers import make_sampler

        assert make_sampler("random").name == "random"
        assert make_sampler("cosine-zcp").name == "cosine-zcp"

    def test_error_contract(self):
        from repro.samplers import make_sampler

        with pytest.raises(ValueError):
            make_sampler("cosine-bogus")
        with pytest.raises(ValueError):
            make_sampler("nope")


class TestEncoderShims:
    def test_factory_dict_is_registry_view(self):
        from repro.encodings.base import ENCODER_FACTORIES, ENCODERS

        assert ENCODER_FACTORIES is ENCODERS.factories

    def test_dict_style_registration_still_registers(self):
        from repro.encodings.base import ENCODER_FACTORIES, ENCODERS

        ENCODER_FACTORIES["shim-test-enc"] = lambda: "built"
        try:
            assert ENCODERS.create("shim-test-enc") == "built"
        finally:
            del ENCODER_FACTORIES["shim-test-enc"]


class TestDeviceShims:
    def test_mapping_view(self):
        from repro.hardware.registry import DEVICE_REGISTRY, get_device

        assert "pixel3" in DEVICE_REGISTRY
        assert DEVICE_REGISTRY["pixel3"] is get_device("pixel3")
        assert len(DEVICE_REGISTRY) == len(list(DEVICE_REGISTRY))

    def test_missing_is_keyerror(self):
        from repro.hardware.registry import DEVICE_REGISTRY

        with pytest.raises(KeyError):
            DEVICE_REGISTRY["nope"]


class TestPipelineShims:
    def test_ctor_and_quick_config(self):
        from repro import NASFLATPipeline, get_task
        from repro.transfer.pipeline import quick_config

        cfg = quick_config(n_transfer_samples=5, sampler="random", supplementary=None)
        pipe = NASFLATPipeline(get_task("N1"), cfg, seed=0)
        assert pipe.config.n_transfer_samples == 5
        assert pipe.supplementary is None

    def test_builder_matches_legacy_config(self):
        from repro.transfer import Pipeline
        from repro.transfer.pipeline import quick_config

        built = (
            Pipeline.for_task("N1").sampler("random").supplementary(None).quick().samples(5)
        ).to_config()
        assert built == quick_config(n_transfer_samples=5, sampler="random", supplementary=None)

    def test_supplementary_is_public(self):
        from repro import NASFLATPipeline, get_task
        from repro.transfer.pipeline import quick_config

        pipe = NASFLATPipeline(get_task("N1"), quick_config(), seed=0)
        assert pipe.supplementary is not None
        assert pipe.supplementary.shape[0] == pipe.space.num_architectures()
