"""Zero-cost proxy matrix properties."""
import numpy as np
import pytest

from repro.hardware.features import compute_features
from repro.proxies import PROXY_NAMES, zcp_matrix, zcp_vector


class TestMatrix:
    def test_shape(self, tiny_space):
        m = zcp_matrix(tiny_space)
        assert m.shape == (tiny_space.num_architectures(), 13)

    def test_thirteen_proxies(self):
        assert len(PROXY_NAMES) == 13

    def test_deterministic(self, tiny_space):
        np.testing.assert_allclose(zcp_matrix(tiny_space), zcp_matrix(tiny_space))

    def test_standardized(self, tiny_space):
        m = zcp_matrix(tiny_space, standardize=True)
        np.testing.assert_allclose(m.mean(axis=0), np.zeros(13), atol=1e-9)
        np.testing.assert_allclose(m.std(axis=0), np.ones(13), atol=1e-9)

    def test_params_flops_columns_exact(self, tiny_space):
        m = zcp_matrix(tiny_space, standardize=True)
        feats = compute_features(tiny_space)
        from scipy import stats

        rho_p = stats.spearmanr(m[:, PROXY_NAMES.index("params")], feats.total_params).statistic
        rho_f = stats.spearmanr(m[:, PROXY_NAMES.index("flops")], feats.total_flops).statistic
        assert rho_p > 0.95 and rho_f > 0.95

    def test_columns_not_collinear(self, tiny_space):
        m = zcp_matrix(tiny_space)
        corr = np.abs(np.corrcoef(m.T))
        # flops and params are legitimately near-collinear (conv-dominated
        # cells have a fixed param/flop ratio); every other pair must be
        # meaningfully distinct, and the matrix must have full rank.
        i_f, i_p = PROXY_NAMES.index("flops"), PROXY_NAMES.index("params")
        corr[i_f, i_p] = corr[i_p, i_f] = 0.0
        off_diag = corr[~np.eye(13, dtype=bool)]
        assert off_diag.max() < 0.999
        assert np.linalg.matrix_rank(m, tol=1e-6) == 13

    def test_distinct_archs_distinct_vectors(self, tiny_space):
        m = zcp_matrix(tiny_space)
        assert len(np.unique(m.round(9), axis=0)) > 0.9 * len(m)


class TestVector:
    def test_indexing(self, tiny_space):
        v = zcp_vector(tiny_space, [0, 5])
        np.testing.assert_allclose(v, zcp_matrix(tiny_space)[[0, 5]])
