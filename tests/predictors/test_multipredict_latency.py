"""MultiPredict's latency-vector unified encoding variant."""
import numpy as np
import pytest

from repro.eval import spearman
from repro.predictors import MultiPredictPredictor


@pytest.fixture(scope="module")
def ds():
    from repro.hardware.dataset import LatencyDataset
    from repro.spaces import GenericCellSpace

    return LatencyDataset(GenericCellSpace("nb101", table_size=300))


class TestLatencyEncoding:
    def test_requires_references_and_dataset(self, ds):
        with pytest.raises(ValueError, match="latency encoding"):
            MultiPredictPredictor(ds.space, ["pixel3"], np.random.default_rng(0), encoding="latency")

    def test_unknown_encoding(self, ds):
        with pytest.raises(ValueError, match="unified encoding"):
            MultiPredictPredictor(ds.space, ["pixel3"], np.random.default_rng(0), encoding="flops")

    def test_latency_encoding_trains(self, ds):
        rng = np.random.default_rng(0)
        sources = ["pixel3", "pixel2"]
        model = MultiPredictPredictor(
            ds.space,
            sources,
            np.random.default_rng(0),
            hw_dim=8,
            hidden=(32, 32),
            encoding="latency",
            reference_devices=sources,
            dataset=ds,
        )
        model.pretrain(ds, sources, rng, samples_per_device=64, epochs=10)
        target = "gold_6226"
        idx = rng.choice(300, 20, replace=False)
        model.finetune(ds, target, idx, rng, epochs=20)
        test = np.setdiff1d(np.arange(300), idx)[:150]
        rho = spearman(model.predict(test, target), ds.latency_of(target, test))
        # Reference latencies are a strong encoding when the target
        # correlates with the references.
        assert rho > 0.5

    def test_encoding_matrix_shape(self, ds):
        model = MultiPredictPredictor(
            ds.space,
            ["pixel3"],
            np.random.default_rng(0),
            encoding="latency",
            reference_devices=["pixel3", "pixel2", "fpga"],
            dataset=ds,
        )
        assert model._encoding().shape == (300, 3)
