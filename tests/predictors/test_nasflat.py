"""NASFLAT predictor: forward contract, device management, ablation switches."""
import numpy as np
import pytest

from repro.predictors import NASFLATConfig, NASFLATPredictor, SpaceTensors


@pytest.fixture
def small_cfg():
    return NASFLATConfig(
        op_emb_dim=8,
        node_emb_dim=8,
        hw_emb_dim=8,
        gnn_dims=(16, 16),
        ophw_gnn_dims=(16,),
        ophw_mlp_dims=(16,),
        head_dims=(32,),
    )


@pytest.fixture
def model(tiny_space, small_cfg, rng):
    return NASFLATPredictor(tiny_space, ["devA", "devB"], rng, config=small_cfg)


@pytest.fixture
def batch(tiny_space):
    tensors = SpaceTensors.for_space(tiny_space)
    return tensors.batch([0, 1, 2])


class TestForward:
    def test_output_shape(self, model, batch):
        adj, ops = batch
        out = model(adj, ops, np.zeros(3, dtype=int))
        assert out.shape == (3,)

    def test_device_conditioning_changes_output(self, model, batch, rng):
        adj, ops = batch
        a = model(adj, ops, np.zeros(3, dtype=int)).numpy()
        b = model(adj, ops, np.ones(3, dtype=int)).numpy()
        assert not np.allclose(a, b)

    def test_no_ophw_moves_device_signal_to_head(self, tiny_space, small_cfg, rng, batch):
        """Without OPHW the device still conditions the head (global
        hardware embedding), but not the per-op refinement GNN."""
        import dataclasses

        cfg = dataclasses.replace(small_cfg, use_op_hw=False)
        model = NASFLATPredictor(tiny_space, ["devA", "devB"], rng, config=cfg)
        adj, ops = batch
        a = model(adj, ops, np.zeros(3, dtype=int)).numpy()
        b = model(adj, ops, np.ones(3, dtype=int)).numpy()
        assert not np.allclose(a, b)  # global conditioning present
        # The op-hw refinement path sees only the op embedding width.
        with_ophw = NASFLATPredictor(tiny_space, ["devA"], rng, config=small_cfg)
        assert model.ophw_gnn.branches["dgf"][0].w_f.in_features == cfg.op_emb_dim
        assert with_ophw.ophw_gnn.branches["dgf"][0].w_f.in_features == cfg.op_emb_dim + cfg.hw_emb_dim

    def test_supplementary_validation(self, tiny_space, small_cfg, rng, batch):
        import dataclasses

        adj, ops = batch
        cfg = dataclasses.replace(small_cfg, supplementary_dim=5)
        model = NASFLATPredictor(tiny_space, ["devA"], rng, config=cfg)
        with pytest.raises(ValueError, match="none were passed"):
            model(adj, ops, np.zeros(3, dtype=int))
        with pytest.raises(ValueError, match="shape"):
            model(adj, ops, np.zeros(3, dtype=int), supplementary=np.zeros((3, 4)))
        out = model(adj, ops, np.zeros(3, dtype=int), supplementary=np.zeros((3, 5)))
        assert out.shape == (3,)

    def test_unexpected_supplementary_rejected(self, model, batch):
        adj, ops = batch
        with pytest.raises(ValueError, match="supplementary"):
            model(adj, ops, np.zeros(3, dtype=int), supplementary=np.zeros((3, 5)))


class TestDevices:
    def test_add_device_grows_table(self, model):
        before = model.hw_emb.weight.data.shape[0]
        idx = model.add_device("devC")
        assert model.hw_emb.weight.data.shape[0] == before + 1
        assert model.device_index["devC"] == idx

    def test_add_device_init_from_copies_row(self, model):
        model.add_device("devC", init_from="devA")
        table = model.hw_emb.weight.data
        np.testing.assert_allclose(table[model.device_index["devC"]], table[model.device_index["devA"]])

    def test_duplicate_device_rejected(self, model):
        with pytest.raises(ValueError):
            model.add_device("devA")

    def test_unknown_init_device(self, model):
        with pytest.raises(KeyError):
            model.add_device("devC", init_from="devZ")

    def test_empty_device_list_rejected(self, tiny_space, small_cfg, rng):
        with pytest.raises(ValueError):
            NASFLATPredictor(tiny_space, [], rng, config=small_cfg)


class TestPredict:
    def test_predict_batches_match_forward(self, model, tiny_space):
        tensors = SpaceTensors.for_space(tiny_space)
        adj, ops = tensors.batch(np.arange(10))
        chunked = model.predict(adj, ops, "devA", batch_size=3)
        whole = model.predict(adj, ops, "devA", batch_size=100)
        np.testing.assert_allclose(chunked, whole)

    def test_predict_unknown_device(self, model, batch):
        adj, ops = batch
        with pytest.raises(KeyError):
            model.predict(adj, ops, "devZ")
