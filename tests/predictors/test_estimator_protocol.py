"""LatencyEstimator conformance: NASFLAT and every baseline speak the same
fit / adapt / predict / save / load surface."""
import numpy as np
import pytest

from repro.core import LatencyEstimator
from repro.predictors.baselines import (
    BRPNASPredictor,
    FLOPsPredictor,
    HELPPredictor,
    LayerwisePredictor,
    MultiPredictPredictor,
)
from repro.predictors.nasflat import NASFLATPredictor
from repro.predictors.training import FinetuneConfig, PretrainConfig


@pytest.fixture(scope="module")
def pools(tiny_dataset):
    return list(tiny_dataset.devices[:3]), tiny_dataset.devices[3]


@pytest.fixture
def sample_idx(tiny_space, rng):
    return rng.choice(tiny_space.num_architectures(), 12, replace=False)


@pytest.fixture
def query_idx(tiny_space, rng):
    return rng.choice(tiny_space.num_architectures(), 25, replace=False)


def _fitted(name, est, dataset, sources):
    """Fit each estimator with tiny budgets; returns the estimator."""
    if name == "nasflat":
        return est.fit(dataset, sources, config=PretrainConfig(samples_per_device=16, epochs=1))
    if name == "help":
        return est.fit(dataset, sources, meta_iters=2, samples_per_device=24)
    if name == "multipredict":
        return est.fit(dataset, sources, samples_per_device=16, epochs=1)
    return est.fit(dataset, sources)


def _make(name, space, devices):
    rng = np.random.default_rng(0)
    return {
        "nasflat": lambda: NASFLATPredictor(space, devices, rng),
        "brpnas": lambda: BRPNASPredictor(space, rng),
        "help": lambda: HELPPredictor(space, rng),
        "multipredict": lambda: MultiPredictPredictor(space, devices, rng),
        "layerwise": lambda: LayerwisePredictor(space),
        "flops": lambda: FLOPsPredictor(space),
    }[name]()


ALL = ["nasflat", "brpnas", "help", "multipredict", "layerwise", "flops"]


@pytest.mark.parametrize("name", ALL)
class TestConformance:
    def test_isinstance(self, name, tiny_space, pools):
        est = _make(name, tiny_space, pools[0])
        assert isinstance(est, LatencyEstimator)

    def test_fit_adapt_predict(self, name, tiny_space, tiny_dataset, pools, sample_idx, query_idx):
        sources, target = pools
        est = _make(name, tiny_space, sources)
        assert _fitted(name, est, tiny_dataset, sources) is est
        kwargs = {"epochs": 2} if name in ("brpnas", "multipredict") else {}
        if name == "help":
            kwargs = {"steps": 2}
        if name == "nasflat":
            kwargs = {"config": FinetuneConfig(epochs=2)}
        assert est.adapt(target, sample_idx, **kwargs) is est
        pred = est.predict(target, query_idx)
        assert pred.shape == (len(query_idx),)
        assert np.all(np.isfinite(pred))


class TestAdaptIsolation:
    def test_help_adaptations_do_not_leak(self, tiny_space, tiny_dataset, pools, sample_idx, query_idx):
        sources, target = pools
        other = tiny_dataset.devices[4]
        est = _make("help", tiny_space, sources)
        est.fit(tiny_dataset, sources, meta_iters=2, samples_per_device=24)
        est.adapt(target, sample_idx, steps=2)
        before = est.predict(target, query_idx)
        est.adapt(other, sample_idx, steps=2)
        np.testing.assert_allclose(est.predict(target, query_idx), before)

    def test_brpnas_per_device_models(self, tiny_space, tiny_dataset, pools, sample_idx, query_idx):
        sources, target = pools
        other = tiny_dataset.devices[4]
        est = _make("brpnas", tiny_space, sources)
        est.fit(tiny_dataset, sources)
        est.adapt(target, sample_idx, epochs=2)
        before = est.predict(target, query_idx)
        est.adapt(other, sample_idx, epochs=2)
        np.testing.assert_allclose(est.predict(target, query_idx), before)


@pytest.mark.parametrize("name", ALL)
class TestSaveLoadRoundtrip:
    def test_roundtrip_preserves_predictions(
        self, name, tiny_space, tiny_dataset, pools, sample_idx, query_idx, tmp_path
    ):
        sources, target = pools
        est = _make(name, tiny_space, sources)
        _fitted(name, est, tiny_dataset, sources)
        kwargs = {"epochs": 2} if name in ("brpnas", "multipredict") else {}
        if name == "help":
            kwargs = {"steps": 2}
        if name == "nasflat":
            kwargs = {"config": FinetuneConfig(epochs=2)}
        est.adapt(target, sample_idx, **kwargs)
        expected = est.predict(target, query_idx)

        path = tmp_path / f"{name}.npz"
        est.save(path)
        fresh = _make(name, tiny_space, sources)
        fresh.load(path)
        if name in ("nasflat", "multipredict"):
            # These reload shared weights; the target row must exist again.
            pass
        np.testing.assert_allclose(fresh.predict(target, query_idx), expected, rtol=1e-10)
