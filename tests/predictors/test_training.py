"""Training loops: pretraining transfers signal, fine-tuning adapts."""
import numpy as np
import pytest

from repro.eval import spearman
from repro.predictors import (
    FinetuneConfig,
    NASFLATConfig,
    NASFLATPredictor,
    PretrainConfig,
    finetune_on_device,
    predict_latency,
    pretrain_multidevice,
)

SMALL = NASFLATConfig(
    op_emb_dim=8,
    node_emb_dim=8,
    hw_emb_dim=8,
    gnn_dims=(16, 16),
    ophw_gnn_dims=(16,),
    ophw_mlp_dims=(16,),
    head_dims=(32,),
)


@pytest.fixture(scope="module")
def devices(tiny_dataset_module):
    return tiny_dataset_module.devices


@pytest.fixture(scope="module")
def tiny_dataset_module():
    from repro.hardware.dataset import LatencyDataset
    from repro.spaces import GenericCellSpace

    return LatencyDataset(GenericCellSpace("nb101", table_size=300))


class TestPretrain:
    def test_learns_source_device_ranks(self, tiny_dataset_module):
        ds = tiny_dataset_module
        rng = np.random.default_rng(0)
        sources = ["pixel3", "pixel2"]
        model = NASFLATPredictor(ds.space, sources, rng, config=SMALL)
        test_idx = np.arange(100, 250)
        before = spearman(predict_latency(model, "pixel3", test_idx), ds.latency_of("pixel3", test_idx))
        pretrain_multidevice(
            model, ds, sources, rng, PretrainConfig(samples_per_device=64, epochs=8, batch_size=16)
        )
        after = spearman(predict_latency(model, "pixel3", test_idx), ds.latency_of("pixel3", test_idx))
        assert after > max(before, 0.5)

    def test_unregistered_device_rejected(self, tiny_dataset_module):
        ds = tiny_dataset_module
        rng = np.random.default_rng(0)
        model = NASFLATPredictor(ds.space, ["pixel3"], rng, config=SMALL)
        with pytest.raises(KeyError, match="not registered"):
            pretrain_multidevice(model, ds, ["pixel3", "fpga"], rng)

    def test_pinned_sample_indices(self, tiny_dataset_module):
        ds = tiny_dataset_module
        rng = np.random.default_rng(0)
        model = NASFLATPredictor(ds.space, ["pixel3"], rng, config=SMALL)
        pinned = np.arange(32)
        pretrain_multidevice(
            model,
            ds,
            ["pixel3"],
            rng,
            PretrainConfig(samples_per_device=32, epochs=1),
            sample_indices={"pixel3": pinned},
        )  # must not raise; behaviour covered by determinism of the API


class TestFinetune:
    def test_adapts_to_new_device(self, tiny_dataset_module):
        ds = tiny_dataset_module
        rng = np.random.default_rng(1)
        sources = ["pixel3", "pixel2"]
        model = NASFLATPredictor(ds.space, sources, rng, config=SMALL)
        pretrain_multidevice(
            model, ds, sources, rng, PretrainConfig(samples_per_device=64, epochs=8, batch_size=16)
        )
        target = "fpga"
        model.add_device(target, init_from="pixel3")
        train_idx = rng.choice(300, 20, replace=False)
        finetune_on_device(model, ds, target, train_idx, rng, FinetuneConfig(epochs=25))
        test_idx = np.setdiff1d(np.arange(300), train_idx)[:150]
        rho = spearman(predict_latency(model, target, test_idx), ds.latency_of(target, test_idx))
        assert rho > 0.4

    def test_unregistered_target_rejected(self, tiny_dataset_module):
        ds = tiny_dataset_module
        rng = np.random.default_rng(0)
        model = NASFLATPredictor(ds.space, ["pixel3"], rng, config=SMALL)
        with pytest.raises(KeyError, match="add_device"):
            finetune_on_device(model, ds, "fpga", np.arange(5), rng)


class TestConfigs:
    def test_paper_defaults(self):
        p = PretrainConfig()
        assert p.epochs == 150 and p.batch_size == 16 and p.lr == 1e-3
        f = FinetuneConfig()
        assert f.epochs == 40 and f.lr == 3e-3

    def test_unknown_loss(self, tiny_dataset_module):
        from repro.nnlib.losses import make_loss

        with pytest.raises(ValueError):
            make_loss("huber", 0.1)
