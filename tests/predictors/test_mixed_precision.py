"""Mixed-precision accuracy gate: f32 plans must rank like f64 plans.

The dtype policy (``docs/ARCHITECTURE.md``, "Mixed-precision execution")
promises that an f32-compiled plan is a *ranking-equivalent* drop-in for
the f64 plan of the same predictor: latency predictors are consumed
through rank correlation, so the gate is Spearman >= 0.999 between the
two precisions on held-out batches — per registered space, after
adaptation, across the padding path, and after ``add_device``.  The f64
path itself must be untouched by the policy (bitwise gate at the end).
"""
import numpy as np
import pytest

from repro.eval.metrics import spearman
from repro.predictors.compiled import PlanDtypeMismatchError
from repro.predictors.nasflat import NASFLATPredictor
from repro.predictors.space_tensors import SpaceTensors
from repro.predictors.training import FinetuneConfig, PretrainConfig
from repro.serving import PredictorSession
from repro.spaces.registry import get_space
from repro.tasks import Task
from repro.transfer.pipeline import PipelineConfig

#: The accuracy gate from the issue: f32 ranks must be indistinguishable
#: from f64 ranks for serving purposes.
MIN_SPEARMAN = 0.999
SPACES = ["nasbench201", "nasbench101", "fbnet"]


def _twins(space, seed=7, devices=("pixel3", "pixel2")):
    """Two predictors with identical parameters, one per plan dtype."""
    p64 = NASFLATPredictor(space, list(devices), np.random.default_rng(seed))
    p32 = NASFLATPredictor(space, list(devices), np.random.default_rng(seed))
    p32.set_plan_dtype("f32")
    return p64, p32


def _held_out(space, rng, n):
    tensors = SpaceTensors.for_space(space)
    idx = rng.choice(space.num_architectures(), size=n, replace=False)
    return tensors.batch(idx)


@pytest.mark.parametrize("space_name", SPACES)
class TestEverySpaceRankGate:
    def test_f32_ranks_match_f64(self, space_name):
        space = get_space(space_name)
        rng = np.random.default_rng(31)
        p64, p32 = _twins(space)
        for trial in range(3):  # independent held-out batches
            adj, ops = _held_out(space, rng, 64)
            s64 = p64.compiled_predict(adj, ops, "pixel3", batch_size=64)
            s32 = p32.compiled_predict(adj, ops, "pixel3", batch_size=64)
            rho = spearman(s32, s64)
            assert rho >= MIN_SPEARMAN, f"{space_name} trial {trial}: rho={rho}"

    def test_f32_values_stay_close(self, space_name):
        # Belt and braces under the rank gate: raw scores agree to single
        # precision (unit-scale network, so absolute tolerance is fine).
        space = get_space(space_name)
        rng = np.random.default_rng(32)
        p64, p32 = _twins(space)
        adj, ops = _held_out(space, rng, 32)
        s64 = p64.compiled_predict(adj, ops, "pixel3", batch_size=32)
        s32 = p32.compiled_predict(adj, ops, "pixel3", batch_size=32)
        np.testing.assert_allclose(s32, s64, atol=1e-4, rtol=0)


class TestPaddingAndGrowth:
    def test_odd_batches_pad_correctly_under_f32(self, tiny_space):
        # 5 and 33 are off-bucket: rows beyond the batch are zero padding,
        # which must not contaminate real rows in single precision either.
        rng = np.random.default_rng(33)
        p64, p32 = _twins(tiny_space)
        for n in (1, 5, 33):
            adj, ops = _held_out(tiny_space, rng, n)
            s64 = p64.compiled_predict(adj, ops, "pixel3")
            s32 = p32.compiled_predict(adj, ops, "pixel3")
            assert s32.shape == s64.shape == (n,)
            np.testing.assert_allclose(s32, s64, atol=1e-4, rtol=0, err_msg=f"B={n}")

    def test_plans_survive_add_device_under_f32(self, tiny_space):
        # Growing the hardware-embedding table re-binds a *new* parameter
        # array; the f32 cast cache must re-cast rather than serve the old
        # table's image.
        rng = np.random.default_rng(34)
        p64, p32 = _twins(tiny_space)
        adj, ops = _held_out(tiny_space, rng, 6)
        p32.compiled_predict(adj, ops, "pixel3")  # compile before growing
        p64.add_device("newdev", init_from="pixel3")
        p32.add_device("newdev", init_from="pixel3")
        s64 = p64.compiled_predict(adj, ops, "newdev")
        s32 = p32.compiled_predict(adj, ops, "newdev")
        np.testing.assert_allclose(s32, s64, atol=1e-4, rtol=0)

    def test_mismatched_plan_rejected_by_name(self, tiny_space):
        # install_plan refuses to mix precisions inside one predictor.
        p64, p32 = _twins(tiny_space)
        plan32 = p32.compile(8)
        assert plan32.dtype == "f32"
        with pytest.raises(PlanDtypeMismatchError):
            p64.install_plan(8, plan32)


@pytest.fixture(scope="module")
def mp_task():
    from repro.spaces import GenericCellSpace
    from repro.spaces.registry import _INSTANCES

    sp = GenericCellSpace("nb101", table_size=300)
    _INSTANCES[sp.name] = sp
    return Task(
        "T-mixed",
        sp.name,
        train_devices=("pixel3", "pixel2"),
        test_devices=("fpga", "eyeriss"),
    )


@pytest.fixture(scope="module")
def mp_cfg():
    return PipelineConfig(
        sampler="random",
        supplementary=None,
        n_transfer_samples=8,
        pretrain=PretrainConfig(samples_per_device=24, epochs=2, batch_size=16),
        finetune=FinetuneConfig(epochs=4),
        n_test=50,
    )


@pytest.fixture(scope="module")
def adapted_pair(mp_task, mp_cfg):
    """One f64 and one f32 session over the same pretrained weights."""
    s64 = PredictorSession(mp_task, mp_cfg, seed=0).pretrain()
    s32 = PredictorSession(mp_task, mp_cfg, seed=0, plan_dtype="f32").pretrain()
    assert s64.plan_dtype == "f64" and s32.plan_dtype == "f32"
    return s64, s32


class TestCompiledAdaptQuality:
    """f32 compiled-adapt (training plans run in f32, Adam state in f64)
    must land on a predictor of the same *quality* as f64 adapt — the
    trajectories diverge bitwise, so the gate is against ground truth."""

    def test_adapted_predictions_rank_identically(self, adapted_pair):
        s64, s32 = adapted_pair
        rng = np.random.default_rng(36)
        for device in ("fpga", "eyeriss"):
            idx = rng.choice(300, size=48, replace=False)
            rho = spearman(s32.predict_batch(device, idx), s64.predict_batch(device, idx))
            assert rho >= MIN_SPEARMAN, f"{device}: rho={rho}"

    def test_adapt_quality_vs_ground_truth(self, adapted_pair):
        s64, s32 = adapted_pair
        dataset = s64.pipeline.dataset
        rng = np.random.default_rng(37)
        idx = rng.choice(300, size=64, replace=False)
        for device in ("fpga", "eyeriss"):
            truth = dataset.latency_of(device, idx)
            q64 = spearman(s64.predict_batch(device, idx), truth)
            q32 = spearman(s32.predict_batch(device, idx), truth)
            # f32 training noise must not cost measurable predictor quality.
            assert q32 >= q64 - 0.02, f"{device}: f64={q64:.4f} f32={q32:.4f}"


class TestDefaultPathUntouched:
    def test_f64_remains_the_default_everywhere(self, tiny_space):
        p = NASFLATPredictor(tiny_space, ["pixel3"], np.random.default_rng(38))
        assert p.plan_dtype == "f64"
        session_default = PredictorSession.__init__.__kwdefaults__ or {}
        assert session_default.get("plan_dtype", "f64") == "f64"

    def test_f64_twin_is_bitwise_stable_under_the_policy(self, tiny_space):
        # The dtype machinery must be a no-op branch for f64 plans: two
        # identically-seeded predictors, one constructed before and one
        # after a set_plan_dtype round trip, produce identical bits.
        rng = np.random.default_rng(39)
        adj, ops = _held_out(tiny_space, rng, 16)
        p_ref = NASFLATPredictor(tiny_space, ["pixel3"], np.random.default_rng(9))
        p_rt = NASFLATPredictor(tiny_space, ["pixel3"], np.random.default_rng(9))
        p_rt.set_plan_dtype("f32")
        p_rt.set_plan_dtype("f64")
        np.testing.assert_array_equal(
            p_ref.compiled_predict(adj, ops, "pixel3"),
            p_rt.compiled_predict(adj, ops, "pixel3"),
        )
