"""SpaceTensors cache and batch assembly."""
import numpy as np
import pytest

from repro.predictors import SpaceTensors


class TestSpaceTensors:
    def test_batch_matches_architectures(self, tiny_space):
        tensors = SpaceTensors.for_space(tiny_space)
        adj, ops = tensors.batch([3, 7])
        a3 = tiny_space.architecture(3)
        a7 = tiny_space.architecture(7)
        np.testing.assert_array_equal(adj[0], a3.adjacency)
        np.testing.assert_array_equal(ops[1], a7.ops)

    def test_cached_per_space(self, tiny_space):
        assert SpaceTensors.for_space(tiny_space) is SpaceTensors.for_space(tiny_space)

    def test_shapes(self, tiny_space):
        tensors = SpaceTensors.for_space(tiny_space)
        n = tiny_space.num_architectures()
        big_n = tiny_space.num_nodes
        assert tensors.adj.shape == (n, big_n, big_n)
        assert tensors.ops.shape == (n, big_n)

    def test_nb201_shared_adjacency(self, nb201):
        tensors = SpaceTensors.for_space(nb201)
        # Every NB201 architecture shares the fixed 8-node skeleton.
        np.testing.assert_array_equal(tensors.adj[0], tensors.adj[12345])
