"""SpaceTensors cache and batch assembly."""
import numpy as np
import pytest

from repro.predictors import SpaceTensors


class TestSpaceTensors:
    def test_batch_matches_architectures(self, tiny_space):
        tensors = SpaceTensors.for_space(tiny_space)
        adj, ops = tensors.batch([3, 7])
        a3 = tiny_space.architecture(3)
        a7 = tiny_space.architecture(7)
        np.testing.assert_array_equal(adj[0], a3.adjacency)
        np.testing.assert_array_equal(ops[1], a7.ops)

    def test_cached_per_space(self, tiny_space):
        assert SpaceTensors.for_space(tiny_space) is SpaceTensors.for_space(tiny_space)

    def test_shapes(self, tiny_space):
        tensors = SpaceTensors.for_space(tiny_space)
        n = tiny_space.num_architectures()
        big_n = tiny_space.num_nodes
        assert tensors.adj.shape == (n, big_n, big_n)
        assert tensors.ops.shape == (n, big_n)

    def test_nb201_shared_adjacency(self, nb201):
        tensors = SpaceTensors.for_space(nb201)
        # Every NB201 architecture shares the fixed 8-node skeleton.
        np.testing.assert_array_equal(tensors.adj[0], tensors.adj[12345])


class TestIdentityKeyedCache:
    def _space(self, n=12):
        from repro.spaces import GenericCellSpace

        return GenericCellSpace("nb101", table_size=n)

    def test_two_same_named_instances_coexist(self):
        """The cache keys on instance identity, not space name: two live
        same-named spaces (the benchmark pattern) must not thrash."""
        a, b = self._space(), self._space()
        assert a.name == b.name
        ta1 = SpaceTensors.for_space(a)
        tb1 = SpaceTensors.for_space(b)
        assert ta1 is not tb1
        assert SpaceTensors.for_space(a) is ta1  # still resident: no rebuild
        assert SpaceTensors.for_space(b) is tb1

    def test_cache_is_bounded_lru(self):
        spaces = [self._space() for _ in range(SpaceTensors._CAPACITY + 3)]
        tensors = [SpaceTensors.for_space(s) for s in spaces]
        # The oldest entries were evicted: resolving them again rebuilds.
        assert SpaceTensors.for_space(spaces[0]) is not tensors[0]
        # The most recent are still resident.
        assert SpaceTensors.for_space(spaces[-1]) is tensors[-1]

    def test_entry_pins_its_space(self):
        tensors = SpaceTensors.for_space(self._space())  # space has no other ref
        assert SpaceTensors.for_space(tensors.space) is tensors
