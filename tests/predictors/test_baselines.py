"""Baseline predictors: each trains and ranks better than chance."""
import numpy as np
import pytest

from repro.eval import spearman
from repro.predictors import (
    BRPNASPredictor,
    FLOPsPredictor,
    HELPPredictor,
    LayerwisePredictor,
    MultiPredictPredictor,
)


@pytest.fixture(scope="module")
def ds():
    from repro.hardware.dataset import LatencyDataset
    from repro.spaces import GenericCellSpace

    return LatencyDataset(GenericCellSpace("nb101", table_size=300))


class TestBRPNAS:
    def test_from_scratch_training(self, ds):
        rng = np.random.default_rng(0)
        model = BRPNASPredictor(ds.space, rng, emb_dim=8, gnn_dims=(16, 16))
        train = rng.choice(300, 150, replace=False)
        model.fit(ds, "pixel3", train, rng, epochs=15)
        test = np.setdiff1d(np.arange(300), train)
        rho = spearman(model.predict(test), ds.latency_of("pixel3", test))
        assert rho > 0.5


class TestHELP:
    def test_meta_train_and_transfer(self, ds):
        rng = np.random.default_rng(0)
        model = HELPPredictor(ds.space, rng, n_ref=5, hidden=(32, 32))
        sources = ["pixel3", "pixel2", "gold_6226"]
        model.meta_train(ds, sources, rng, samples_per_device=64, meta_iters=25, inner_steps=2)
        target = "fpga"
        transfer_idx = rng.choice(300, 20, replace=False)
        device_vec = model.transfer(ds, target, transfer_idx, rng, steps=20)
        assert device_vec.shape == (5,)
        test = np.setdiff1d(np.arange(300), transfer_idx)[:150]
        rho = spearman(model.predict(test, device_vec), ds.latency_of(target, test))
        assert rho > 0.2  # HELP struggles on low-correlation transfers

    def test_device_vec_standardized(self, ds):
        rng = np.random.default_rng(0)
        model = HELPPredictor(ds.space, rng, n_ref=8, hidden=(16,))
        vec = model._device_vec(ds, "pixel3")
        assert abs(vec.mean()) < 1e-9 and abs(vec.std() - 1.0) < 1e-6


class TestMultiPredict:
    def test_pretrain_finetune_predict(self, ds):
        rng = np.random.default_rng(0)
        sources = ["pixel3", "pixel2"]
        model = MultiPredictPredictor(ds.space, sources, rng, hw_dim=8, hidden=(32, 32))
        model.pretrain(ds, sources, rng, samples_per_device=64, epochs=10)
        target = "fpga"
        idx = rng.choice(300, 20, replace=False)
        model.finetune(ds, target, idx, rng, epochs=20)
        test = np.setdiff1d(np.arange(300), idx)[:150]
        rho = spearman(model.predict(test, target), ds.latency_of(target, test))
        assert rho > 0.2

    def test_add_device_automatic(self, ds):
        rng = np.random.default_rng(0)
        model = MultiPredictPredictor(ds.space, ["pixel3"], rng, hw_dim=4, hidden=(8,))
        model.finetune(ds, "fpga", np.arange(10), rng, epochs=1)
        assert "fpga" in model.device_index


class TestLayerwise:
    def test_fit_predict(self, ds):
        model = LayerwisePredictor(ds.space)
        rng = np.random.default_rng(0)
        train = rng.choice(300, 200, replace=False)
        model.fit(ds, "pixel3", train)
        test = np.setdiff1d(np.arange(300), train)
        rho = spearman(model.predict(test), ds.latency_of("pixel3", test))
        assert rho > 0.5  # good on an additive device...

    def test_predict_before_fit(self, ds):
        with pytest.raises(RuntimeError):
            LayerwisePredictor(ds.space).predict(np.arange(5))

    def test_nonnegative_coefficients(self, ds):
        model = LayerwisePredictor(ds.space).fit(ds, "pixel3", np.arange(200))
        assert (model._coef >= 0).all()


class TestFLOPs:
    def test_ranks_by_flops(self, ds):
        model = FLOPsPredictor(ds.space)
        from repro.hardware.features import compute_features

        feats = compute_features(ds.space)
        np.testing.assert_allclose(model.predict(np.arange(50)), feats.total_flops[:50])

    def test_correlates_with_compute_bound_device(self, ds):
        model = FLOPsPredictor(ds.space)
        rho = spearman(model.predict(np.arange(300)), ds.latencies("pixel3"))
        assert rho > 0.4
