"""TA-GATES ablation model: config axes and training."""
import numpy as np
import pytest

from repro.eval import kendall
from repro.nas.accuracy_surrogate import accuracy_table
from repro.predictors import SpaceTensors, TAGATESConfig, TAGATESPredictor


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TAGATESConfig(backward="hypergcn")
        with pytest.raises(ValueError):
            TAGATESConfig(detach="some")
        with pytest.raises(ValueError):
            TAGATESConfig(timesteps=0)


@pytest.mark.parametrize(
    "cfg",
    [
        TAGATESConfig(timesteps=1, backward="none"),
        TAGATESConfig(timesteps=2, backward="mlp", use_byi=True, use_bope=True),
        TAGATESConfig(timesteps=2, backward="mlp", use_byi=False, use_bope=True),
        TAGATESConfig(timesteps=2, backward="gcn", use_byi=True, use_bope=False),
        TAGATESConfig(timesteps=3, backward="mlp", detach="def"),
        TAGATESConfig(timesteps=2, backward="mlp", detach="all"),
        TAGATESConfig(timesteps=2, backward="mlp", all_node_encoding=True),
    ],
    ids=["t1-none", "t2-mlp", "t2-mlp-nobyi", "t2-gcn-nobope", "t3-def", "t2-all", "t2-allnodes"],
)
def test_forward_shapes_all_configs(tiny_space, cfg):
    rng = np.random.default_rng(0)
    model = TAGATESPredictor(tiny_space, rng, config=cfg)
    adj, ops = SpaceTensors.for_space(tiny_space).batch([0, 1, 2, 3])
    out = model(adj, ops)
    assert out.shape == (4,)


def test_backward_flows_through_timesteps(tiny_space):
    rng = np.random.default_rng(0)
    model = TAGATESPredictor(tiny_space, rng, config=TAGATESConfig(timesteps=2, backward="mlp"))
    adj, ops = SpaceTensors.for_space(tiny_space).batch([0, 1])
    model(adj, ops).sum().backward()
    assert model.update_mlp.parameters()[0].grad is not None
    assert model.bmlp.parameters()[0].grad is not None


def test_learns_accuracy_ranks(tiny_space):
    rng = np.random.default_rng(0)
    acc = accuracy_table(tiny_space)
    model = TAGATESPredictor(tiny_space, rng)
    train = rng.choice(300, 128, replace=False)
    model.fit(acc[train], train, rng, epochs=20)
    test = np.setdiff1d(np.arange(300), train)[:120]
    kdt = kendall(model.predict(test), acc[test])
    assert kdt > 0.3
