"""Plan-artifact round-trips at the predictor level (ISSUE 6 satellite).

Property: for every registered space and batch bucket, a plan compiled on
one predictor, saved, and loaded into a *different* predictor instance
restored from the same checkpoint replays **bitwise-identically** — for
inference and training plans, before and after an optimizer-style weight
update, and across a real process boundary.  ``add_device`` growth keeps
inference artifacts loadable (embedding tables only grow rows) but must
reject stale training artifacts (their gradient buffers were sized at
trace time).
"""
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.nnlib import mse_loss, trace_training_step
from repro.nnlib.ir import PlanIRError, load_plan
from repro.nnlib.trace import notify_param_mutation
from repro.predictors.nasflat import NASFLATPredictor
from repro.predictors.space_tensors import SpaceTensors
from repro.spaces.registry import get_space

SPACES = ["nasbench201", "nasbench101", "fbnet"]
BUCKETS = [8, 16]
DEVICES = ["pixel3", "pixel2"]


def _predictor(space, seed=11):
    return NASFLATPredictor(space, list(DEVICES), np.random.default_rng(seed))


def _restored_clone(predictor, tmp_path, tag):
    """A second predictor instance carrying the same weights via checkpoint
    (the cross-instance half of the cross-process guarantee)."""
    ckpt = tmp_path / f"ckpt_{tag}.npz"
    predictor.save(ckpt)
    clone = _predictor(predictor.space, seed=999)  # different init; overwritten
    clone.load(ckpt)
    clone.eval()
    return clone


def _batch(space, rng, n):
    idx = rng.choice(space.num_architectures(), size=n, replace=False)
    adj, ops = SpaceTensors.for_space(space).batch(idx)
    return adj, ops


@pytest.mark.parametrize("space_name", SPACES)
class TestEverySpaceEveryBucket:
    def test_inference_artifact_bitwise(self, space_name, tmp_path):
        space = get_space(space_name)
        rng = np.random.default_rng(5)
        predictor = _predictor(space)
        clone = _restored_clone(predictor, tmp_path, space_name)
        for bucket in BUCKETS:
            path = tmp_path / f"plan_{space_name}_b{bucket}.npz"
            assert predictor.save_plan(bucket, path) == bucket
            loaded_bucket, _ = clone.load_plan(path)
            assert loaded_bucket == bucket
            adj, ops = _batch(space, rng, bucket)
            ref = predictor.compiled_predict(adj, ops, "pixel3", batch_size=bucket)
            out = clone.compiled_predict(adj, ops, "pixel3", batch_size=bucket)
            assert np.array_equal(ref, out), f"{space_name} bucket={bucket}"

    def test_bitwise_after_weight_update(self, space_name, tmp_path):
        # Loaded plans bind parameters by path: an optimizer-style update
        # applied to both predictors must keep replays identical.
        space = get_space(space_name)
        rng = np.random.default_rng(6)
        predictor = _predictor(space)
        clone = _restored_clone(predictor, tmp_path, f"{space_name}_upd")
        bucket = BUCKETS[0]
        path = tmp_path / f"plan_{space_name}_upd.npz"
        predictor.save_plan(bucket, path)
        clone.load_plan(path)
        for p, q in zip(predictor.parameters(), clone.parameters()):
            step = 0.01 * np.sign(p.data)
            p.data -= step
            q.data -= step
        notify_param_mutation()
        adj, ops = _batch(space, rng, bucket)
        ref = predictor.compiled_predict(adj, ops, "pixel3", batch_size=bucket)
        out = clone.compiled_predict(adj, ops, "pixel3", batch_size=bucket)
        assert np.array_equal(ref, out)

    def test_training_artifact_bitwise(self, space_name, tmp_path):
        space = get_space(space_name)
        rng = np.random.default_rng(7)
        predictor = _predictor(space)
        clone = _restored_clone(predictor, tmp_path, f"{space_name}_train")
        n = BUCKETS[0]
        adj, ops = _batch(space, rng, n)
        didx = np.zeros(n, dtype=np.int64)
        inputs = predictor._plan_inputs(adj, ops, didx)
        inputs["target"] = rng.standard_normal(n)
        tp = trace_training_step(predictor, mse_loss, inputs)
        path = tmp_path / f"train_{space_name}.npz"
        tp.save(path)
        tp2 = load_plan(path, module=clone)
        l0, g0 = tp.replay(inputs)
        l1, g1 = tp2.replay(inputs)
        assert l0 == l1
        assert all(
            (a is None and b is None) or np.array_equal(a, b) for a, b in zip(g0, g1)
        )


class TestAddDeviceGrowth:
    def test_inference_artifact_survives_growth(self, tmp_path):
        space = get_space("nasbench201")
        rng = np.random.default_rng(8)
        predictor = _predictor(space)
        clone = _restored_clone(predictor, tmp_path, "grow")
        bucket = 8
        path = tmp_path / "plan_grow.npz"
        predictor.save_plan(bucket, path)
        # Both predictors grow identically (copy-init from the same row).
        predictor.add_device("titan_rtx_256", init_from="pixel3")
        clone.add_device("titan_rtx_256", init_from="pixel3")
        clone.load_plan(path)  # row growth of a gather table: still loadable
        adj, ops = _batch(space, rng, bucket)
        ref = predictor.compiled_predict(adj, ops, "titan_rtx_256", batch_size=bucket)
        out = clone.compiled_predict(adj, ops, "titan_rtx_256", batch_size=bucket)
        assert np.array_equal(ref, out)

    def test_training_artifact_rejected_after_growth(self, tmp_path):
        space = get_space("nasbench201")
        rng = np.random.default_rng(9)
        predictor = _predictor(space)
        n = 8
        adj, ops = _batch(space, rng, n)
        inputs = predictor._plan_inputs(adj, ops, np.zeros(n, dtype=np.int64))
        inputs["target"] = rng.standard_normal(n)
        tp = trace_training_step(predictor, mse_loss, inputs)
        path = tmp_path / "train_grow.npz"
        tp.save(path)
        predictor.add_device("titan_rtx_256")
        with pytest.raises(PlanIRError, match="stale training-plan artifact"):
            load_plan(path, module=predictor)


class TestCrossProcess:
    """The acceptance criterion proper: compile here, replay in a fresh
    interpreter, compare bitwise."""

    SCRIPT = textwrap.dedent(
        """
        import sys
        import numpy as np
        from repro.predictors.nasflat import NASFLATPredictor
        from repro.predictors.space_tensors import SpaceTensors
        from repro.spaces.registry import get_space

        out_dir, space_name, bucket = sys.argv[1], sys.argv[2], int(sys.argv[3])
        space = get_space(space_name)
        predictor = NASFLATPredictor(
            space, ["pixel3", "pixel2"], np.random.default_rng(999)
        )
        predictor.load(f"{out_dir}/ckpt.npz")
        predictor.eval()
        predictor.load_plan(f"{out_dir}/plan.npz")
        rng = np.random.default_rng(42)
        idx = rng.choice(space.num_architectures(), size=bucket, replace=False)
        adj, ops = SpaceTensors.for_space(space).batch(idx)
        scores = predictor.compiled_predict(adj, ops, "pixel3", batch_size=bucket)
        np.save(f"{out_dir}/scores.npy", scores)
        """
    )

    @pytest.mark.parametrize("space_name", SPACES)
    def test_fresh_process_replay_is_bitwise(self, space_name, tmp_path):
        space = get_space(space_name)
        predictor = _predictor(space)
        predictor.eval()
        bucket = 8
        predictor.save(tmp_path / "ckpt.npz")
        predictor.save_plan(bucket, tmp_path / "plan.npz")
        rng = np.random.default_rng(42)
        idx = rng.choice(space.num_architectures(), size=bucket, replace=False)
        adj, ops = SpaceTensors.for_space(space).batch(idx)
        ref = predictor.compiled_predict(adj, ops, "pixel3", batch_size=bucket)

        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
        subprocess.run(
            [sys.executable, "-c", self.SCRIPT, str(tmp_path), space_name, str(bucket)],
            check=True,
            env=env,
            timeout=300,
        )
        out = np.load(tmp_path / "scores.npy")
        assert np.array_equal(ref, out), f"{space_name}: cross-process replay diverged"
