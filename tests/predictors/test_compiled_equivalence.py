"""Equivalence suite: compiled replay == eager forward (ISSUE 4).

For every registered space and each predictor that gained ``compile()``
(NASFLAT, BRP-NAS, MultiPredict), ``CompiledPlan`` replay must match the
eager forward within 1e-6 on randomized batches — including odd batch
sizes that exercise bucket padding, after ``adapt()`` (plan invalidation
correctness), and under concurrent session use.
"""
import threading

import numpy as np
import pytest

from repro.predictors.baselines import BRPNASPredictor, MultiPredictPredictor
from repro.predictors.compiled import bucket_for, plan_buckets
from repro.predictors.nasflat import NASFLATPredictor
from repro.predictors.space_tensors import SpaceTensors
from repro.predictors.training import FinetuneConfig, PretrainConfig
from repro.serving import PredictorSession
from repro.spaces.registry import get_space
from repro.tasks import Task
from repro.transfer.pipeline import PipelineConfig

ATOL = 1e-6
# Every space in the registry (nasbench201 is the paper's main table; the
# fbnet/nb101 tables exercise different node counts and op vocabularies).
SPACES = ["nasbench201", "nasbench101", "fbnet"]
BATCHES = [1, 5, 16, 33]  # off-bucket sizes exercise the padding path


def _batch(space, rng, n):
    tensors = SpaceTensors.for_space(space)
    idx = rng.choice(space.num_architectures(), size=n, replace=False)
    return tensors.batch(idx)


class TestBucketing:
    def test_bucket_for_powers_of_two(self):
        assert [bucket_for(n) for n in (1, 2, 3, 8, 9, 33, 256)] == [1, 2, 4, 8, 16, 64, 256]
        with pytest.raises(ValueError):
            bucket_for(0)

    def test_plan_buckets_binary_decomposition(self):
        # Exact chunks down to the minimum; only a tiny tail gets padded,
        # and no bucket drops below 4 (1/2-row GEMMs take different BLAS
        # paths, which would make row bits depend on batch composition).
        assert plan_buckets(64) == [64]
        assert plan_buckets(100) == [64, 32, 4]
        assert plan_buckets(65) == [64, 4]
        assert plan_buckets(5) == [8]  # sub-minimum: one padded bucket
        assert plan_buckets(1) == [4]
        assert plan_buckets(2) == [4]
        assert plan_buckets(3) == [4]

    def test_row_bits_independent_of_batch_composition(self):
        """The invariant the serving score cache rests on: a row's compiled
        score is bitwise-identical whether it's computed alone, in a subset,
        or inside a larger batch (every bucket is >= 4 rows, so BLAS always
        takes the same per-row reduction path)."""
        space = get_space("nasbench201")
        rng = np.random.default_rng(23)
        predictor = NASFLATPredictor(space, ["pixel3", "pixel2"], rng)
        tensors = SpaceTensors.for_space(space)
        idx = rng.choice(space.num_architectures(), size=16, replace=False)
        adj, ops = tensors.batch(idx)
        full = predictor.compiled_predict(adj, ops, "pixel3", batch_size=64)
        for sel in ([0], [3, 7], [1, 4, 9], list(range(6)), list(range(16))):
            sadj, sops = tensors.batch(idx[sel])
            sub = predictor.compiled_predict(sadj, sops, "pixel3", batch_size=64)
            np.testing.assert_array_equal(sub, full[sel], err_msg=f"sel={sel}")

    def test_plan_buckets_cover_every_row(self):
        for n in (1, 7, 8, 33, 100, 1000):
            covered = 0
            for bucket in plan_buckets(n):
                covered += min(bucket, n - covered)
            assert covered == n, n


@pytest.mark.parametrize("space_name", SPACES)
class TestEverySpace:
    def test_nasflat_replay_matches_eager(self, space_name):
        space = get_space(space_name)
        rng = np.random.default_rng(11)
        predictor = NASFLATPredictor(space, ["pixel3", "pixel2"], rng)
        for n in BATCHES:
            adj, ops = _batch(space, rng, n)
            eager = predictor.predict(adj, ops, "pixel3", batch_size=64)
            compiled = predictor.compiled_predict(adj, ops, "pixel3", batch_size=64)
            np.testing.assert_allclose(compiled, eager, atol=ATOL, rtol=0, err_msg=f"B={n}")

    def test_brpnas_replay_matches_eager(self, space_name):
        space = get_space(space_name)
        rng = np.random.default_rng(12)
        predictor = BRPNASPredictor(space, rng, gnn_dims=(64, 64))
        idx = rng.choice(space.num_architectures(), size=21, replace=False)
        np.testing.assert_allclose(
            predictor.compiled_predict(idx), predictor.predict(idx), atol=ATOL, rtol=0
        )


class TestMultiPredict:
    def test_replay_matches_eager(self, tiny_space):
        rng = np.random.default_rng(13)
        predictor = MultiPredictPredictor(tiny_space, ["pixel3", "pixel2"], rng)
        idx = rng.choice(300, size=19, replace=False)
        np.testing.assert_allclose(
            predictor.compiled_predict(idx, "pixel3"),
            predictor.predict(idx, "pixel3"),
            atol=ATOL,
            rtol=0,
        )
        # LatencyEstimator call form too.
        np.testing.assert_allclose(
            predictor.compiled_predict("pixel2", idx),
            predictor.predict("pixel2", idx),
            atol=ATOL,
            rtol=0,
        )


class TestSupplementaryAndAblations:
    def test_nasflat_with_supplementary_encoding(self, tiny_space):
        from repro.predictors.nasflat import NASFLATConfig

        rng = np.random.default_rng(14)
        cfg = NASFLATConfig(supplementary_dim=5)
        predictor = NASFLATPredictor(tiny_space, ["pixel3"], rng, config=cfg)
        adj, ops = _batch(tiny_space, rng, 9)
        supp = rng.normal(size=(9, 5))
        np.testing.assert_allclose(
            predictor.compiled_predict(adj, ops, "pixel3", supp),
            predictor.predict(adj, ops, "pixel3", supp),
            atol=ATOL,
            rtol=0,
        )

    def test_nasflat_without_op_hw(self, tiny_space):
        from repro.predictors.nasflat import NASFLATConfig

        rng = np.random.default_rng(15)
        cfg = NASFLATConfig(use_op_hw=False)
        predictor = NASFLATPredictor(tiny_space, ["pixel3", "pixel2"], rng, config=cfg)
        adj, ops = _batch(tiny_space, rng, 7)
        np.testing.assert_allclose(
            predictor.compiled_predict(adj, ops, "pixel2"),
            predictor.predict(adj, ops, "pixel2"),
            atol=ATOL,
            rtol=0,
        )

    def test_plans_survive_add_device(self, tiny_space):
        """Growing the hardware-embedding table must not stale the plan:
        parameters are read live at replay."""
        rng = np.random.default_rng(16)
        predictor = NASFLATPredictor(tiny_space, ["pixel3"], rng)
        adj, ops = _batch(tiny_space, rng, 6)
        predictor.compiled_predict(adj, ops, "pixel3")  # compile before growing
        predictor.add_device("newdev", init_from="pixel3")
        np.testing.assert_allclose(
            predictor.compiled_predict(adj, ops, "newdev"),
            predictor.predict(adj, ops, "newdev"),
            atol=ATOL,
            rtol=0,
        )


@pytest.fixture(scope="module")
def served_task():
    from repro.spaces import GenericCellSpace
    from repro.spaces.registry import _INSTANCES

    sp = GenericCellSpace("nb101", table_size=300)
    _INSTANCES[sp.name] = sp
    return Task(
        "T-equiv",
        sp.name,
        train_devices=("pixel3", "pixel2"),
        test_devices=("fpga", "eyeriss", "raspi4"),
    )


@pytest.fixture(scope="module")
def served_cfg():
    return PipelineConfig(
        sampler="random",
        supplementary=None,
        n_transfer_samples=8,
        pretrain=PretrainConfig(samples_per_device=24, epochs=2, batch_size=16),
        finetune=FinetuneConfig(epochs=4),
        n_test=50,
    )


class TestAfterAdapt:
    def test_session_compiled_matches_eager_after_adapt(self, served_task, served_cfg):
        compiled = PredictorSession(served_task, served_cfg, seed=0, use_compiled=True)
        compiled.pretrain()
        eager = PredictorSession.from_pipeline(compiled.pipeline, use_compiled=False)
        rng = np.random.default_rng(17)
        for device in served_task.test_devices:
            idx = rng.choice(300, size=24, replace=False)
            np.testing.assert_allclose(
                compiled.predict_batch(device, idx),
                eager.predict_batch(device, idx),
                atol=ATOL,
                rtol=0,
                err_msg=device,
            )
        assert compiled.stats.plan_compiles >= len(served_task.test_devices)

    def test_readaptation_invalidates_and_stays_equivalent(self, served_task, served_cfg):
        session = PredictorSession(served_task, served_cfg, seed=1, use_compiled=True)
        session.pretrain()
        idx = np.arange(16)
        session.predict_batch("fpga", idx)
        compiles_before = session.stats.plan_compiles
        # Explicit-indices re-adaptation replaces fpga's predictor: its plan
        # must be invalidated, recompiled from the *new* parameters, and
        # still match the eager forward of the refreshed predictor.
        session.adapt("fpga", indices=np.arange(8))
        assert session.stats.plan_invalidations >= 1
        compiled_scores = session.predict_batch("fpga", idx)
        assert session.stats.plan_compiles == compiles_before + 1
        eager = PredictorSession.from_pipeline(session.pipeline, use_compiled=False)
        eager.adapt("fpga", indices=np.arange(8))
        np.testing.assert_allclose(
            compiled_scores, eager.predict_batch("fpga", idx), atol=ATOL, rtol=0
        )


class TestConcurrentSessionEquivalence:
    N_THREADS = 6

    def test_concurrent_compiled_serving_matches_serial_eager(self, served_task, served_cfg):
        serial = PredictorSession(served_task, served_cfg, seed=2, use_compiled=False)
        serial.pretrain()
        rng = np.random.default_rng(18)
        work = [
            (device, rng.choice(300, size=size, replace=False))
            for device in served_task.test_devices
            for size in (6, 16, 16)
        ]
        expected = [serial.predict_batch(dev, idx) for dev, idx in work]

        hammered = PredictorSession.from_pipeline(serial.pipeline, use_compiled=True)
        errors: list[Exception] = []
        barrier = threading.Barrier(self.N_THREADS)

        def worker(tid):
            try:
                barrier.wait(10.0)
                for k in range(len(work)):
                    j = (k + tid * 2) % len(work)
                    dev, idx = work[j]
                    np.testing.assert_allclose(
                        hammered.predict_batch(dev, idx), expected[j], atol=ATOL, rtol=0
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120.0)
        assert not errors, errors
        assert hammered.stats.plan_hits > 0
