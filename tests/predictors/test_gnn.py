"""GNN layer semantics: DGF equation fidelity, GAT masking, ensemble."""
import numpy as np
import pytest

from repro.nnlib import Tensor
from repro.predictors.gnn import DGFLayer, GATLayer, GNNStack


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def batch(rng):
    b, n, d = 2, 4, 6
    x = rng.normal(size=(b, n, d))
    adj = np.zeros((b, n, n))
    adj[:, 0, 1] = adj[:, 1, 2] = adj[:, 0, 2] = adj[:, 2, 3] = 1
    op = rng.normal(size=(b, n, d))
    return x, adj, op


class TestDGF:
    def test_equation_matches_manual(self, rng, batch):
        """X' = sigma(O W_o) * (A^T X W_f) + X W_f + b_f, elementwise."""
        x, adj, op = batch
        layer = DGFLayer(6, 5, 6, rng)
        out = layer(Tensor(x), Tensor(adj), Tensor(op)).numpy()
        w_f, b_f = layer.w_f.weight.data, layer.w_f.bias.data
        w_o = layer.w_o.weight.data
        xw = x @ w_f + b_f
        gate = 1 / (1 + np.exp(-(op @ w_o)))
        manual = gate * (np.swapaxes(adj, 1, 2) @ xw) + xw
        np.testing.assert_allclose(out, manual, rtol=1e-10)

    def test_gradients_flow(self, rng, batch):
        x, adj, op = batch
        layer = DGFLayer(6, 5, 6, rng)
        out = layer(Tensor(x), Tensor(adj), Tensor(op))
        out.sum().backward()
        assert layer.w_f.weight.grad is not None
        assert layer.w_o.weight.grad is not None


class TestGAT:
    def test_output_shape(self, rng, batch):
        x, adj, op = batch
        layer = GATLayer(6, 5, 6, rng)
        assert layer(Tensor(x), Tensor(adj), Tensor(op)).shape == (2, 4, 5)

    def test_attention_respects_adjacency(self, rng):
        """A node with no predecessors attends only to itself."""
        b, n, d = 1, 3, 4
        x = rng.normal(size=(b, n, d))
        adj = np.zeros((b, n, n))
        adj[:, 0, 2] = 1  # only 0 -> 2; node 1 is isolated
        layer = GATLayer(d, d, d, rng)
        h = (Tensor(x) @ layer.w_p.weight).numpy()
        scores = np.einsum("bud,d,bvd->buv", h, layer.attn_vec.data, h)
        scores = np.where(scores > 0, scores, 0.2 * scores)
        mask = np.minimum(np.swapaxes(adj, 1, 2) + np.eye(n), 1.0)
        masked = scores * mask + (1 - mask) * -1e9
        e = np.exp(masked - masked.max(-1, keepdims=True))
        alpha = e / e.sum(-1, keepdims=True)
        # Node 1's attention must be entirely on itself.
        np.testing.assert_allclose(alpha[0, 1], [0.0, 1.0, 0.0], atol=1e-6)
        # Node 2 attends to node 0 and itself only.
        assert alpha[0, 2, 1] == pytest.approx(0.0, abs=1e-6)

    def test_layernorm_applied(self, rng, batch):
        x, adj, op = batch
        layer = GATLayer(6, 5, 6, rng)
        out = layer(Tensor(x), Tensor(adj), Tensor(op)).numpy()
        # LayerNorm with default affine ~ zero mean on last axis.
        np.testing.assert_allclose(out.mean(-1), np.zeros((2, 4)), atol=1e-6)


class TestGNNStack:
    def test_kinds_and_out_dims(self, rng, batch):
        x, adj, op = batch
        for kind, factor in (("dgf", 1), ("gat", 1), ("ensemble", 2)):
            stack = GNNStack(6, (8, 8), op_dim=6, rng=rng, kind=kind)
            assert stack.out_dim == 8 * factor
            out = stack(Tensor(x), Tensor(adj), Tensor(op))
            assert out.shape == (2, 4, stack.out_dim)

    def test_unknown_kind(self, rng):
        with pytest.raises(ValueError):
            GNNStack(6, (8,), op_dim=6, rng=rng, kind="transformer")

    def test_ensemble_differs_from_branches(self, rng, batch):
        x, adj, op = batch
        ens = GNNStack(6, (8,), op_dim=6, rng=rng, kind="ensemble")
        out = ens(Tensor(x), Tensor(adj), Tensor(op)).numpy()
        assert not np.allclose(out[..., :8], out[..., 8:])


class TestGNNStackTrainability:
    """The branch layers must be discoverable, checkpointed, and trained.

    Regression tests for the pre-v2 latent bug where ``branches`` was a bare
    list of lists invisible to ``parameters()``/``state_dict()`` — the GNN
    acted as a fixed random feature extractor.
    """

    def test_branch_parameters_in_state_dict(self, rng):
        stack = GNNStack(6, (8, 8), op_dim=6, rng=rng, kind="ensemble")
        keys = set(stack.state_dict())
        assert "branches.dgf.0.w_f.weight" in keys
        assert "branches.gat.1.norm.gamma" in keys
        # 2 DGF layers x 3 params (w_f.weight, w_f.bias, w_o.weight) + 2 GAT
        # layers x 5 (w_p, attn, w_o, LayerNorm gamma/beta): nothing else
        # lives in the stack.
        assert len(keys) == 2 * 3 + 2 * 5

    def test_every_branch_parameter_reachable_by_optimizer(self, rng):
        from repro.nnlib import Adam

        stack = GNNStack(6, (8,), op_dim=6, rng=rng, kind="ensemble")
        assert len(stack.parameters()) == len(stack.state_dict())
        x, adj, op = rng.normal(size=(2, 4, 6)), np.zeros((2, 4, 4)), rng.normal(size=(2, 4, 6))
        adj[:, 0, 1] = 1
        before = stack.state_dict()
        opt = Adam(stack.parameters(), lr=1e-2)
        opt.zero_grad()
        stack(Tensor(x), Tensor(adj), Tensor(op)).sum().backward()
        opt.step()
        after = stack.state_dict()
        changed = [k for k in before if not np.allclose(before[k], after[k])]
        # Every layer of every branch took a gradient step.
        assert {k.split(".")[1] for k in changed} == {"dgf", "gat"}
        assert len(changed) == len(before)

    def test_state_dict_roundtrip_restores_outputs(self, rng, batch):
        x, adj, op = batch
        a = GNNStack(6, (8,), op_dim=6, rng=rng, kind="ensemble")
        b = GNNStack(6, (8,), op_dim=6, rng=np.random.default_rng(7), kind="ensemble")
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(
            a(Tensor(x), Tensor(adj), Tensor(op)).numpy(),
            b(Tensor(x), Tensor(adj), Tensor(op)).numpy(),
        )
