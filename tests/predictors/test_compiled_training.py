"""Compiled training equivalence for the predictors (ISSUE 5).

For every registered space, one compiled NASFLAT training step must produce
the eager loss and per-parameter gradients within 1e-6 (in practice the
loss is bitwise except GEMM-collapse reordering and gradients sit at
~1e-12), including after ``add_device`` grows the hardware-embedding table
(training plans must re-trace; inference plans survive).  The training
*loops* with ``compiled=True`` must then track their eager trajectories.
"""
import numpy as np
import pytest

from repro.nnlib import Adam, FusedAdam, pairwise_hinge_loss
from repro.nnlib.losses import make_loss
from repro.predictors.nasflat import NASFLATConfig, NASFLATPredictor
from repro.predictors.space_tensors import SpaceTensors
from repro.predictors.training import (
    FinetuneConfig,
    PretrainConfig,
    finetune_on_device,
    pretrain_multidevice,
)
from repro.spaces.registry import get_space

ATOL = 1e-6
SPACES = ["nasbench201", "nasbench101", "fbnet"]


def step_pair(model, adj, ops, didx, supp, target, loss="hinge", margin=0.1):
    """(eager loss+grads, compiled loss+grads) for one batch, no updates."""
    params = model.parameters()
    model.zero_grad()
    loss_t = make_loss(loss, margin)(model(adj, ops, didx, supp), target)
    loss_t.backward()
    eager = [np.zeros_like(p.data) if p.grad is None else p.grad.copy() for p in params]
    trainer = model.compile_training(loss, margin)
    grads = [np.empty_like(p.data) for p in params]
    compiled_loss = trainer.loss_and_grads(adj, ops, didx, supp, target, grads)
    return (loss_t.item(), eager), (compiled_loss, grads)


def assert_step_equivalence(model, adj, ops, didx, supp, target, **kw):
    (el, eg), (cl, cg) = step_pair(model, adj, ops, didx, supp, target, **kw)
    np.testing.assert_allclose(cl, el, atol=ATOL, rtol=0)
    for name_p, a, b in zip(model.named_parameters(), eg, cg):
        np.testing.assert_allclose(b, a, atol=ATOL, rtol=0, err_msg=name_p[0])


@pytest.mark.parametrize("space_name", SPACES)
class TestEverySpace:
    def test_nasflat_step_matches_eager(self, space_name):
        space = get_space(space_name)
        rng = np.random.default_rng(31)
        model = NASFLATPredictor(space, ["pixel3", "pixel2"], rng)
        tensors = SpaceTensors.for_space(space)
        idx = rng.choice(space.num_architectures(), size=16, replace=False)
        adj, ops = tensors.batch(idx)
        didx = np.full(16, 0)
        target = rng.normal(size=16)
        assert_step_equivalence(model, adj, ops, didx, None, target)

    def test_step_matches_after_add_device(self, space_name):
        """add_device grows hw_emb: the cached training plan is stale and
        must be re-traced, after which gradients (including the new row's)
        match eager."""
        space = get_space(space_name)
        rng = np.random.default_rng(32)
        model = NASFLATPredictor(space, ["pixel3"], rng)
        tensors = SpaceTensors.for_space(space)
        idx = rng.choice(space.num_architectures(), size=8, replace=False)
        adj, ops = tensors.batch(idx)
        target = rng.normal(size=8)
        assert_step_equivalence(model, adj, ops, np.full(8, 0), None, target)
        trainer = model.compile_training("hinge", 0.1)
        compiles_before = trainer.plan_compiles
        model.add_device("newdev", init_from="pixel3")
        new_trainer = model.compile_training("hinge", 0.1)
        assert new_trainer is not trainer  # add_device dropped the engines
        assert_step_equivalence(model, adj, ops, np.full(8, 1), None, target)
        assert new_trainer.plan_compiles >= 1
        assert compiles_before >= 1


class TestVariants:
    def test_supplementary_encoding_step(self, tiny_space):
        rng = np.random.default_rng(33)
        cfg = NASFLATConfig(supplementary_dim=5)
        model = NASFLATPredictor(tiny_space, ["pixel3"], rng, config=cfg)
        tensors = SpaceTensors.for_space(tiny_space)
        idx = rng.choice(tiny_space.num_architectures(), size=9, replace=False)
        adj, ops = tensors.batch(idx)
        supp = rng.normal(size=(9, 5))
        assert_step_equivalence(model, adj, ops, np.full(9, 0), supp, rng.normal(size=9))

    def test_no_op_hw_ablation_step(self, tiny_space):
        rng = np.random.default_rng(34)
        cfg = NASFLATConfig(use_op_hw=False)
        model = NASFLATPredictor(tiny_space, ["pixel3", "pixel2"], rng, config=cfg)
        tensors = SpaceTensors.for_space(tiny_space)
        idx = rng.choice(tiny_space.num_architectures(), size=7, replace=False)
        adj, ops = tensors.batch(idx)
        assert_step_equivalence(model, adj, ops, np.full(7, 1), None, rng.normal(size=7))

    def test_mse_loss_step(self, tiny_space):
        rng = np.random.default_rng(35)
        model = NASFLATPredictor(tiny_space, ["pixel3"], rng)
        tensors = SpaceTensors.for_space(tiny_space)
        idx = rng.choice(tiny_space.num_architectures(), size=6, replace=False)
        adj, ops = tensors.batch(idx)
        assert_step_equivalence(model, adj, ops, np.full(6, 0), None, rng.normal(size=6), loss="mse")

    def test_plans_cached_per_batch_size(self, tiny_space):
        rng = np.random.default_rng(36)
        model = NASFLATPredictor(tiny_space, ["pixel3"], rng)
        tensors = SpaceTensors.for_space(tiny_space)
        trainer = model.compile_training("hinge", 0.1)
        opt = FusedAdam(trainer.params, lr=1e-3)
        for size in (8, 8, 5, 8, 5):
            idx = rng.choice(tiny_space.num_architectures(), size=size, replace=False)
            adj, ops = tensors.batch(idx)
            trainer.step(opt, adj, ops, np.full(size, 0), None, rng.normal(size=size))
        assert trainer.plan_compiles == 2  # one per distinct batch size
        assert model.compile_training("hinge", 0.1) is trainer  # memoized


class TestTrainingLoops:
    def _setup(self, tiny_space, seed):
        from repro.hardware.dataset import LatencyDataset

        rng = np.random.default_rng(seed)
        return rng, LatencyDataset(tiny_space)

    def test_pretrain_compiled_tracks_eager(self, tiny_space):
        _, dataset = self._setup(tiny_space, 40)
        cfg = PretrainConfig(samples_per_device=24, epochs=2, batch_size=8)
        m_e = NASFLATPredictor(tiny_space, ["pixel3", "pixel2"], np.random.default_rng(1))
        m_c = NASFLATPredictor(tiny_space, ["pixel3", "pixel2"], np.random.default_rng(1))
        pretrain_multidevice(m_e, dataset, ["pixel3", "pixel2"], np.random.default_rng(2), cfg)
        pretrain_multidevice(
            m_c, dataset, ["pixel3", "pixel2"], np.random.default_rng(2), cfg, compiled=True
        )
        for (name, a), b in zip(m_e.named_parameters(), m_c.parameters()):
            np.testing.assert_allclose(b.data, a.data, atol=ATOL, rtol=0, err_msg=name)

    def test_finetune_compiled_tracks_eager(self, tiny_space):
        _, dataset = self._setup(tiny_space, 41)
        cfg = FinetuneConfig(epochs=30)
        idx = np.arange(10)
        m_e = NASFLATPredictor(tiny_space, ["pixel3", "fpga"], np.random.default_rng(3))
        m_c = NASFLATPredictor(tiny_space, ["pixel3", "fpga"], np.random.default_rng(3))
        finetune_on_device(m_e, dataset, "fpga", idx, np.random.default_rng(4), cfg)
        finetune_on_device(m_c, dataset, "fpga", idx, np.random.default_rng(4), cfg, compiled=True)
        for (name, a), b in zip(m_e.named_parameters(), m_c.parameters()):
            np.testing.assert_allclose(b.data, a.data, atol=ATOL, rtol=0, err_msg=name)
        # Predictions after the compiled fine-tune match eager's within 1e-6.
        tensors = SpaceTensors.for_space(tiny_space)
        adj, ops = tensors.batch(np.arange(20))
        np.testing.assert_allclose(
            m_c.predict(adj, ops, "fpga"), m_e.predict(adj, ops, "fpga"), atol=ATOL, rtol=0
        )

    def test_estimator_protocol_compiled_kwargs(self, tiny_space):
        """fit()/adapt() forward compiled= through the protocol surface."""
        _, dataset = self._setup(tiny_space, 42)
        model = NASFLATPredictor(tiny_space, ["pixel3", "pixel2"], np.random.default_rng(5))
        model.fit(
            dataset,
            ["pixel3", "pixel2"],
            config=PretrainConfig(samples_per_device=16, epochs=1, batch_size=8),
            compiled=True,
        )
        model.adapt("fpga", np.arange(8), config=FinetuneConfig(epochs=4), compiled=True)
        scores = model.predict("fpga", np.arange(12))
        assert scores.shape == (12,) and np.all(np.isfinite(scores))
