"""Regenerate the committed golden plan artifacts.

Run from the repo root whenever ``PLAN_FORMAT_VERSION`` is bumped::

    PYTHONPATH=src python tests/fixtures/gen_golden_plan.py

and commit the refreshed ``golden_*_v<N>.npz`` files (delete the previous
version's files in the same commit — the compat test globs for the
current version only).

Two precisions are committed per plan kind: the default-f64 pair and an
``_f32`` pair compiled under ``dtype="f32"``.  On a same-version run you
can regenerate one precision in isolation with ``--dtype f32`` (or
``f64``).  NOTE: the committed *f64* fixtures were written before the
plan ``dtype`` field existed — their payload has no ``dtype`` key, which
is exactly what makes them the compat proof that dtype-less artifacts
load as f64.  Do not regenerate them except on a format bump (on a bump
the dtype-less case stays covered by the compat test's synthetic
strip-the-key check).
"""
import sys
from pathlib import Path

from repro.nnlib import mse_loss, trace, trace_training_step
from repro.nnlib.serialization import PLAN_FORMAT_VERSION

from golden_plan_model import build_model, forward_inputs, training_inputs


def main() -> None:
    wanted = sys.argv[2] if sys.argv[1:2] == ["--dtype"] else "all"
    if wanted not in ("all", "f64", "f32"):
        raise SystemExit(f"usage: gen_golden_plan.py [--dtype f64|f32] (got {wanted!r})")
    here = Path(__file__).resolve().parent
    for dtype in ("f64", "f32"):
        if wanted not in ("all", dtype):
            continue
        tag = "" if dtype == "f64" else f"_{dtype}"
        model = build_model()
        fwd = trace(model._forward_core, forward_inputs(), module=model, dtype=dtype)
        fwd_path = here / f"golden_fwd{tag}_v{PLAN_FORMAT_VERSION}.npz"
        fwd.save(fwd_path, metadata={"fixture": f"golden_fwd{tag}"})
        train = trace_training_step(model, mse_loss, training_inputs(), dtype=dtype)
        train_path = here / f"golden_train{tag}_v{PLAN_FORMAT_VERSION}.npz"
        train.save(train_path, metadata={"fixture": f"golden_train{tag}"})
        print(f"wrote {fwd_path}")
        print(f"wrote {train_path}")


if __name__ == "__main__":
    main()
