"""Regenerate the committed golden plan artifacts.

Run from the repo root whenever ``PLAN_FORMAT_VERSION`` is bumped::

    PYTHONPATH=src python tests/fixtures/gen_golden_plan.py

and commit the refreshed ``golden_fwd_v<N>.npz`` / ``golden_train_v<N>.npz``
(delete the previous version's files in the same commit — the compat test
globs for the current version only).
"""
from pathlib import Path

from repro.nnlib import mse_loss, trace, trace_training_step
from repro.nnlib.serialization import PLAN_FORMAT_VERSION

from golden_plan_model import build_model, forward_inputs, training_inputs


def main() -> None:
    here = Path(__file__).resolve().parent
    model = build_model()
    fwd = trace(model._forward_core, forward_inputs(), module=model)
    fwd_path = here / f"golden_fwd_v{PLAN_FORMAT_VERSION}.npz"
    fwd.save(fwd_path, metadata={"fixture": "golden_fwd"})
    train = trace_training_step(model, mse_loss, training_inputs())
    train_path = here / f"golden_train_v{PLAN_FORMAT_VERSION}.npz"
    train.save(train_path, metadata={"fixture": "golden_train"})
    print(f"wrote {fwd_path}")
    print(f"wrote {train_path}")


if __name__ == "__main__":
    main()
