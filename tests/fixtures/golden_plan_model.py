"""The deterministic model behind the committed golden plan artifacts.

The golden fixtures (``golden_fwd_v1.npz`` / ``golden_train_v1.npz``) are
compiled from this exact model — same seed, same shapes — so the compat
test can rebuild it bit-for-bit and compare a loaded replay against an
in-process trace.  Keep this file frozen: changing the architecture or
seeds invalidates the committed artifacts (regenerate them with
``gen_golden_plan.py`` and bump the ``_v<N>`` suffix alongside a
``PLAN_FORMAT_VERSION`` bump).
"""
import numpy as np

from repro.nnlib import Linear, Module, Tensor

SEED = 20240
BATCH, IN_DIM, HIDDEN = 6, 5, 9


class GoldenNet(Module):
    """Small but representative: matmuls, fused elementwise, a reduction."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(SEED)
        self.a = Linear(IN_DIM, HIDDEN, rng=rng)
        self.b = Linear(HIDDEN, HIDDEN, rng=rng)
        self.c = Linear(HIDDEN, 1, rng=rng)

    def _forward_core(self, inputs):
        x = Tensor(inputs["x"])
        h = self.a(x).relu()
        h = self.b(h).sigmoid()
        return self.c(h)


def build_model() -> GoldenNet:
    return GoldenNet().eval()


def forward_inputs() -> dict:
    rng = np.random.default_rng(SEED + 1)
    return {"x": rng.standard_normal((BATCH, IN_DIM))}


def training_inputs() -> dict:
    rng = np.random.default_rng(SEED + 2)
    return {
        "x": rng.standard_normal((BATCH, IN_DIM)),
        "target": rng.standard_normal((BATCH, 1)),
    }
