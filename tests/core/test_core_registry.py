"""The generic component registry: registration, caching, errors."""
import pytest

from repro.core.registry import Registry, UnknownComponentError


@pytest.fixture
def reg():
    r = Registry("widget", cache=True)
    r.register("a", lambda: object())
    r.register("b", lambda: object())
    return r


class TestRegistration:
    def test_decorator_form(self):
        r = Registry("widget")

        @r.register("thing")
        class Thing:
            pass

        assert r.create("thing").__class__ is Thing

    def test_duplicate_rejected(self, reg):
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", lambda: None)

    def test_names_sorted(self, reg):
        reg.register("0th", lambda: None)
        assert reg.names() == sorted(reg.names())

    def test_contains_and_iter(self, reg):
        assert "a" in reg and "missing" not in reg
        assert list(reg) == reg.names()


class TestCaching:
    def test_cached_instance_shared(self, reg):
        assert reg.get("a") is reg.get("a")

    def test_create_bypasses_cache(self, reg):
        assert reg.create("a") is not reg.get("a")

    def test_args_bypass_cache(self):
        r = Registry("widget", cache=True)
        r.register("w", lambda tag=None: (tag, object()))
        assert r.get("w", tag=1) is not r.get("w", tag=1)

    def test_clear_instances(self, reg):
        first = reg.get("a")
        reg.clear_instances()
        assert reg.get("a") is not first

    def test_uncached_registry_builds_fresh(self):
        r = Registry("widget")
        r.register("w", lambda: object())
        assert r.get("w") is not r.get("w")


class TestResolvers:
    def test_dynamic_names(self, reg):
        reg.register_resolver(
            lambda name: (lambda: name.upper()) if name.startswith("dyn-") else None
        )
        assert reg.get("dyn-x") == "DYN-X"
        assert "dyn-x" in reg

    def test_dynamic_instances_cached(self, reg):
        reg.register_resolver(lambda name: (lambda: object()) if name == "dyn" else None)
        assert reg.get("dyn") is reg.get("dyn")


class TestUnknownName:
    def test_error_is_keyerror_and_valueerror(self, reg):
        with pytest.raises(KeyError):
            reg.get("missing")
        with pytest.raises(ValueError):
            reg.get("missing")

    def test_message_names_kind_and_choices(self, reg):
        with pytest.raises(UnknownComponentError) as exc:
            reg.get("missing")
        msg = str(exc.value)
        assert "unknown widget 'missing'" in msg
        assert "'a'" in msg and "'b'" in msg

    def test_message_suggests_close_match(self):
        r = Registry("device")
        r.register("pixel3", lambda: None)
        r.register("pixel2", lambda: None)
        with pytest.raises(UnknownComponentError, match="similar"):
            r.get("pixel4")


class TestFamilyMigrations:
    """All four component families resolve through the one Registry class."""

    def test_families_are_registries(self):
        from repro.encodings.base import ENCODERS
        from repro.hardware.registry import DEVICES
        from repro.samplers.factory import SAMPLERS
        from repro.spaces.registry import SPACES

        for family in (SPACES, SAMPLERS, ENCODERS, DEVICES):
            assert isinstance(family, Registry)

    def test_space_unknown_lists_choices(self):
        from repro.spaces.registry import SPACES

        with pytest.raises(UnknownComponentError, match="nasbench201"):
            SPACES.get("nasbench999")

    def test_device_unknown_suggests(self):
        from repro.hardware.registry import DEVICES

        with pytest.raises(UnknownComponentError, match="similar"):
            DEVICES.get("1080ti_batch1")

    def test_encoder_unknown_message(self):
        from repro.encodings.base import ENCODERS

        with pytest.raises(KeyError, match="unknown encoder"):
            ENCODERS.factory("bogus")

    def test_sampler_unknown_is_valueerror(self):
        from repro.samplers.factory import SAMPLERS

        with pytest.raises(ValueError, match="unknown sampler"):
            SAMPLERS.get("quantum")
