"""Hardware-embedding initialization selection (§5.2)."""
import numpy as np
import pytest

from repro.transfer import select_init_device


class TestSelectInit:
    def test_picks_most_correlated(self, nb201_dataset, rng):
        idx = rng.choice(15625, 30, replace=False)
        # titanxp_1 should be chosen for 1080ti_1 over edge accelerators.
        chosen = select_init_device(
            nb201_dataset, "1080ti_1", idx, ["titanxp_1", "edge_tpu_int8", "fpga"]
        )
        assert chosen == "titanxp_1"

    def test_single_source(self, nb201_dataset, rng):
        idx = rng.choice(15625, 10, replace=False)
        assert select_init_device(nb201_dataset, "pixel3", idx, ["fpga"]) == "fpga"

    def test_empty_sources_rejected(self, nb201_dataset):
        with pytest.raises(ValueError):
            select_init_device(nb201_dataset, "pixel3", np.arange(5), [])
