"""End-to-end pipeline orchestration."""
import numpy as np
import pytest

from repro.predictors.training import FinetuneConfig, PretrainConfig
from repro.tasks import Task
from repro.transfer import NASFLATPipeline, PipelineConfig
from repro.transfer.pipeline import quick_config


@pytest.fixture(scope="module")
def small_task():
    from repro.spaces import GenericCellSpace
    from repro.spaces.registry import _INSTANCES

    sp = GenericCellSpace("nb101", table_size=300)
    _INSTANCES[sp.name] = sp  # register so the pipeline can look it up
    return Task(
        "T-mini",
        sp.name,
        train_devices=("pixel3", "pixel2", "gold_6226"),
        test_devices=("fpga", "eyeriss"),
    )


@pytest.fixture(scope="module")
def mini_cfg():
    return PipelineConfig(
        sampler="random",
        supplementary=None,
        pretrain=PretrainConfig(samples_per_device=48, epochs=6, batch_size=16),
        finetune=FinetuneConfig(epochs=15),
        n_test=150,
    )


class TestPipeline:
    def test_transfer_before_pretrain_rejected(self, small_task, mini_cfg):
        pipe = NASFLATPipeline(small_task, mini_cfg, seed=0)
        with pytest.raises(RuntimeError):
            pipe.transfer("fpga")

    def test_transfer_to_non_test_device_rejected(self, small_task, mini_cfg):
        pipe = NASFLATPipeline(small_task, mini_cfg, seed=0)
        pipe.pretrain()
        with pytest.raises(KeyError):
            pipe.transfer("pixel3")

    def test_run_covers_all_test_devices(self, small_task, mini_cfg):
        pipe = NASFLATPipeline(small_task, mini_cfg, seed=0)
        results = pipe.run()
        assert set(results) == {"fpga", "eyeriss"}
        for res in results.values():
            assert -1.0 <= res.spearman <= 1.0
            assert res.n_samples == mini_cfg.n_transfer_samples
            assert res.finetune_seconds > 0

    def test_hw_init_records_device(self, small_task, mini_cfg):
        import dataclasses

        cfg = dataclasses.replace(mini_cfg, hw_init=True)
        pipe = NASFLATPipeline(small_task, cfg, seed=0)
        pipe.pretrain()
        res = pipe.transfer("fpga")
        assert res.init_device in small_task.train_devices

    def test_no_hw_init(self, small_task, mini_cfg):
        import dataclasses

        cfg = dataclasses.replace(mini_cfg, hw_init=False)
        pipe = NASFLATPipeline(small_task, cfg, seed=0)
        pipe.pretrain()
        assert pipe.transfer("fpga").init_device is None

    def test_explicit_sample_indices(self, small_task, mini_cfg):
        pipe = NASFLATPipeline(small_task, mini_cfg, seed=0)
        pipe.pretrain()
        res = pipe.transfer("fpga", sample_indices=np.arange(12))
        assert res.n_samples == 12


class TestQuickConfig:
    def test_returns_scaled_down(self):
        cfg = quick_config()
        assert cfg.pretrain.samples_per_device < PretrainConfig().samples_per_device
        assert cfg.pretrain.epochs < PretrainConfig().epochs

    def test_overrides(self):
        cfg = quick_config(sampler="params", supplementary=None)
        assert cfg.sampler == "params" and cfg.supplementary is None
