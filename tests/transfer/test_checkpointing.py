"""Pipeline checkpoint save/load."""
import numpy as np
import pytest

from repro.predictors.training import FinetuneConfig, PretrainConfig
from repro.tasks import Task
from repro.transfer import NASFLATPipeline, PipelineConfig


@pytest.fixture(scope="module")
def mini_task():
    from repro.spaces import GenericCellSpace
    from repro.spaces.registry import _INSTANCES

    sp = GenericCellSpace("nb101", table_size=300)
    _INSTANCES[sp.name] = sp
    return Task("T-ckpt", sp.name, train_devices=("pixel3", "pixel2"), test_devices=("fpga",))


@pytest.fixture(scope="module")
def cfg():
    return PipelineConfig(
        sampler="random",
        supplementary=None,
        pretrain=PretrainConfig(samples_per_device=32, epochs=3, batch_size=16),
        finetune=FinetuneConfig(epochs=8),
        n_test=100,
    )


class TestPipelineCheckpoint:
    def test_save_before_pretrain_rejected(self, mini_task, cfg, tmp_path):
        pipe = NASFLATPipeline(mini_task, cfg, seed=0)
        with pytest.raises(RuntimeError):
            pipe.save_pretrained(tmp_path / "ckpt.npz")

    def test_roundtrip_transfers_identically(self, mini_task, cfg, tmp_path):
        path = tmp_path / "ckpt.npz"
        pipe1 = NASFLATPipeline(mini_task, cfg, seed=0)
        pipe1.pretrain()
        pipe1.save_pretrained(path)
        res1 = pipe1.transfer("fpga", sample_indices=np.arange(12))

        pipe2 = NASFLATPipeline(mini_task, cfg, seed=0)
        meta = pipe2.load_pretrained(path)
        assert meta["task"] == "T-ckpt" and meta["train_devices"] == ["pixel3", "pixel2"]
        res2 = pipe2.transfer("fpga", sample_indices=np.arange(12))
        # Same checkpoint + same samples => identical adapted weights.
        for key, val in pipe2.last_predictor.state_dict().items():
            np.testing.assert_array_equal(val, pipe1.last_predictor.state_dict()[key])
        assert res1.init_device == res2.init_device

    def test_task_mismatch_rejected(self, mini_task, cfg, tmp_path):
        path = tmp_path / "ckpt.npz"
        pipe = NASFLATPipeline(mini_task, cfg, seed=0)
        pipe.pretrain()
        pipe.save_pretrained(path)
        other_task = Task("T-other", mini_task.space, ("pixel3", "pixel2"), ("eyeriss",))
        other = NASFLATPipeline(other_task, cfg, seed=0)
        with pytest.raises(ValueError, match="pretrained for task"):
            other.load_pretrained(path)
