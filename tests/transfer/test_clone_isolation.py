"""Per-device transfer isolation: fine-tuning one target must not leak into
another target's predictor (paper Fig. 2: one pretrained checkpoint fans out
to independent per-device predictors)."""
import numpy as np
import pytest

from repro.predictors.training import FinetuneConfig, PretrainConfig
from repro.tasks import Task
from repro.transfer import NASFLATPipeline, PipelineConfig


@pytest.fixture(scope="module")
def pipe():
    from repro.spaces import GenericCellSpace
    from repro.spaces.registry import _INSTANCES

    sp = GenericCellSpace("nb101", table_size=300)
    _INSTANCES[sp.name] = sp
    task = Task(
        "T-clone",
        sp.name,
        train_devices=("pixel3", "pixel2"),
        test_devices=("fpga", "eyeriss"),
    )
    cfg = PipelineConfig(
        sampler="random",
        supplementary=None,
        pretrain=PretrainConfig(samples_per_device=32, epochs=3, batch_size=16),
        finetune=FinetuneConfig(epochs=10),
        n_test=100,
    )
    p = NASFLATPipeline(task, cfg, seed=0)
    p.pretrain()
    return p


class TestCloneIsolation:
    def test_pretrained_weights_untouched_by_transfer(self, pipe):
        before = {k: v.copy() for k, v in pipe._pretrained_state.items()}
        pipe.transfer("fpga")
        for key, val in pipe._pretrained_state.items():
            np.testing.assert_array_equal(val, before[key])
        for key, val in pipe.predictor.state_dict().items():
            np.testing.assert_array_equal(val, before[key])

    def test_transfer_order_does_not_matter(self, pipe):
        # Adapted weights for fpga must be identical whether or not eyeriss
        # was transferred in between (no cross-device leakage). Fine-tuning
        # is deterministic given the pinned sample indices.
        idx = np.arange(15)
        pipe.transfer("fpga", sample_indices=idx)
        first = {k: v.copy() for k, v in pipe.last_predictor.state_dict().items()}
        pipe.transfer("eyeriss", sample_indices=idx)
        pipe.transfer("fpga", sample_indices=idx)
        for key, val in pipe.last_predictor.state_dict().items():
            np.testing.assert_array_equal(val, first[key])

    def test_last_predictor_has_target_device(self, pipe):
        pipe.transfer("eyeriss")
        assert "eyeriss" in pipe.last_predictor.device_index
        assert "eyeriss" not in pipe.predictor.device_index
