"""Sampler semantics: budgets, uniqueness, diversity properties."""
import numpy as np
import pytest

from repro.hardware.features import compute_features
from repro.samplers import (
    CosineSampler,
    KMeansSampler,
    LatencyOracleSampler,
    ParamsSampler,
    RandomSampler,
    ReferenceLatencySampler,
    make_sampler,
)
from repro.samplers.encoding_based import SamplerFailure


def _check_valid(idx, space, k):
    assert len(idx) == k
    assert len(np.unique(idx)) == k
    assert idx.min() >= 0 and idx.max() < space.num_architectures()


class TestRandom:
    def test_budget_and_uniqueness(self, tiny_space, rng):
        _check_valid(RandomSampler().select(tiny_space, 10, rng), tiny_space, 10)

    def test_invalid_budget(self, tiny_space, rng):
        with pytest.raises(ValueError):
            RandomSampler().select(tiny_space, 0, rng)
        with pytest.raises(ValueError):
            RandomSampler().select(tiny_space, 10**6, rng)

    def test_seeded_determinism(self, tiny_space):
        a = RandomSampler().select(tiny_space, 10, np.random.default_rng(7))
        b = RandomSampler().select(tiny_space, 10, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestParams:
    def test_covers_size_spectrum(self, tiny_space, rng):
        idx = ParamsSampler().select(tiny_space, 10, rng)
        _check_valid(idx, tiny_space, 10)
        params = compute_features(tiny_space).total_params
        sel = np.sort(params[idx])
        # Stratification: the selection spans most of the parameter range.
        assert sel[-1] - sel[0] > 0.7 * (params.max() - params.min())


class TestCosine:
    def test_valid_selection(self, tiny_space, rng):
        idx = CosineSampler("zcp", pool_size=None).select(tiny_space, 12, rng)
        _check_valid(idx, tiny_space, 12)

    def test_more_diverse_than_random(self, tiny_space):
        from repro.encodings import get_encoding

        emb = get_encoding(tiny_space, "zcp")
        unit = emb / (np.linalg.norm(emb, axis=1, keepdims=True) + 1e-12)

        def avg_sim(indices):
            u = unit[indices]
            sims = u @ u.T
            return (sims.sum() - len(indices)) / (len(indices) * (len(indices) - 1))

        cos_sims, rnd_sims = [], []
        for t in range(5):
            rng = np.random.default_rng(t)
            cos_sims.append(avg_sim(CosineSampler("zcp", pool_size=None).select(tiny_space, 10, rng)))
            rnd_sims.append(avg_sim(RandomSampler().select(tiny_space, 10, np.random.default_rng(t))))
        assert np.mean(cos_sims) < np.mean(rnd_sims)


class TestKMeans:
    def test_valid_selection(self, tiny_space, rng):
        idx = KMeansSampler("zcp", pool_size=None).select(tiny_space, 8, rng)
        _check_valid(idx, tiny_space, 8)

    def test_non_strict_fills(self, tiny_space, rng):
        idx = KMeansSampler("zcp", pool_size=None, strict=False).select(tiny_space, 40, rng)
        _check_valid(idx, tiny_space, 40)

    def test_strict_failure_raises(self, tiny_space):
        # Inject an encoding with massive duplication: KMeans cannot produce
        # k distinct medoids, reproducing the paper's NaN-on-FBNet behaviour.
        from repro.encodings.base import _ENCODING_CACHE

        key = (tiny_space.name, "adjop")
        original = _ENCODING_CACHE.get(key)
        dup = np.zeros((tiny_space.num_architectures(), 4))
        dup[:5] = np.arange(20).reshape(5, 4)  # only 6 distinct rows
        _ENCODING_CACHE[key] = dup
        try:
            sampler = KMeansSampler("adjop", pool_size=None, strict=True)
            with pytest.raises(SamplerFailure):
                sampler.select(tiny_space, 50, np.random.default_rng(0))
        finally:
            if original is not None:
                _ENCODING_CACHE[key] = original
            else:
                _ENCODING_CACHE.pop(key, None)


class TestLatencyBased:
    def test_oracle_spans_latency_range(self, tiny_dataset, tiny_space, rng):
        dev = tiny_dataset.devices[0]
        idx = LatencyOracleSampler(tiny_dataset, dev).select(tiny_space, 10, rng)
        _check_valid(idx, tiny_space, 10)
        lat = tiny_dataset.latencies(dev)
        sel = lat[idx]
        assert sel.max() > np.quantile(lat, 0.85)
        assert sel.min() < np.quantile(lat, 0.15)

    def test_reference_sampler(self, tiny_dataset, tiny_space, rng):
        refs = tiny_dataset.devices[:3]
        idx = ReferenceLatencySampler(tiny_dataset, refs, pool_size=None).select(tiny_space, 8, rng)
        _check_valid(idx, tiny_space, 8)

    def test_reference_needs_devices(self, tiny_dataset):
        with pytest.raises(ValueError):
            ReferenceLatencySampler(tiny_dataset, [])


class TestFactory:
    def test_specs(self, tiny_dataset):
        assert make_sampler("random").name == "random"
        assert make_sampler("params").name == "params"
        assert make_sampler("cosine-caz").name == "cosine-caz"
        assert make_sampler("kmeans-zcp").name == "kmeans-zcp"
        s = make_sampler("latency-oracle", dataset=tiny_dataset, target_device=tiny_dataset.devices[0])
        assert s.name == "latency-oracle"

    def test_bad_specs(self, tiny_dataset):
        with pytest.raises(ValueError):
            make_sampler("cosine-bogus")
        with pytest.raises(ValueError):
            make_sampler("latency-oracle")
        with pytest.raises(ValueError):
            make_sampler("quantum")
