"""Compiled training steps: symbolic backward, TrainingPlan replay,
derived loss inputs, fused-optimizer integration, staleness (ISSUE 5)."""
import numpy as np
import pytest

from repro.nnlib import (
    MLP,
    Adam,
    FusedAdam,
    FusedSGD,
    LayerNorm,
    Linear,
    SGD,
    Tensor,
    TraceError,
    concat,
    mse_loss,
    pairwise_hinge_loss,
    stack,
    trace,
    trace_training_step,
    tracing,
)
from repro.nnlib.losses import make_loss
from repro.nnlib.modules import Dropout, Module, Parameter


def eager_grads(fn, loss_fn, inputs, params, target="target"):
    for p in params:
        p.zero_grad()
    loss = loss_fn(fn(inputs), inputs[target])
    loss.backward()
    return loss.item(), [np.zeros_like(p.data) if p.grad is None else p.grad.copy() for p in params]


def assert_training_equivalence(fn, loss_fn, inputs, params, atol=1e-12):
    el, eg = eager_grads(fn, loss_fn, inputs, params)
    plan = trace_training_step(fn, loss_fn, inputs, params=params)
    cl, cg = plan.replay(inputs)
    np.testing.assert_allclose(cl, el, atol=atol, rtol=0)
    for a, b in zip(eg, cg):
        np.testing.assert_allclose(b, a, atol=atol, rtol=0)
    return plan


class TestMLPTraining:
    def test_hinge_grads_match_eager(self):
        rng = np.random.default_rng(0)
        m = MLP(6, [8, 8], 1, rng)
        inputs = {"x": rng.normal(size=(5, 6)), "target": rng.normal(size=5)}
        assert_training_equivalence(
            lambda i: m(Tensor(i["x"])).reshape(5),
            make_loss("hinge", 0.1),
            inputs,
            m.parameters(),
        )

    def test_mse_grads_match_eager(self):
        rng = np.random.default_rng(1)
        m = MLP(4, [6], 1, rng)
        inputs = {"x": rng.normal(size=(3, 4)), "target": rng.normal(size=3)}
        assert_training_equivalence(
            lambda i: m(Tensor(i["x"])).reshape(3),
            make_loss("mse"),
            inputs,
            m.parameters(),
        )

    def test_plan_generalizes_to_fresh_batches(self):
        """One plan, many batches: fresh inputs AND fresh targets (the hinge
        mask must re-derive from the live targets, not the traced batch)."""
        rng = np.random.default_rng(2)
        m = MLP(6, [8], 1, rng)
        fn = lambda i: m(Tensor(i["x"])).reshape(5)
        loss_fn = make_loss("hinge", 0.1)
        inputs = {"x": rng.normal(size=(5, 6)), "target": rng.normal(size=5)}
        plan = trace_training_step(fn, loss_fn, inputs, params=m.parameters())
        for _ in range(3):
            fresh = {"x": rng.normal(size=(5, 6)), "target": rng.normal(size=5)}
            el, eg = eager_grads(fn, loss_fn, fresh, m.parameters())
            cl, cg = plan.replay(fresh)
            np.testing.assert_allclose(cl, el, atol=0, rtol=0)
            for a, b in zip(eg, cg):
                np.testing.assert_allclose(b, a, atol=1e-14, rtol=0)

    def test_hinge_all_tied_targets_is_zero_loss(self):
        """A replayed batch with no ranked pairs must produce loss 0 and
        zero gradients (the derived pair count guards the division)."""
        rng = np.random.default_rng(3)
        m = MLP(4, [6], 1, rng)
        fn = lambda i: m(Tensor(i["x"])).reshape(4)
        inputs = {"x": rng.normal(size=(4, 4)), "target": rng.normal(size=4)}
        plan = trace_training_step(fn, make_loss("hinge", 0.1), inputs, params=m.parameters())
        tied = {"x": rng.normal(size=(4, 4)), "target": np.zeros(4)}
        loss, grads = plan.replay(tied)
        assert loss == 0.0
        for g in grads:
            np.testing.assert_array_equal(g, np.zeros_like(g))


class TestPrimitiveCoverage:
    """VJP rules across the op vocabulary the predictors use."""

    def test_layernorm_and_broadcast_chain(self):
        rng = np.random.default_rng(4)
        norm = LayerNorm(6)
        lin = Linear(6, 6, rng)

        class M(Module):
            def __init__(self):
                super().__init__()
                self.norm, self.lin = norm, lin

        m = M()
        inputs = {"x": rng.normal(size=(3, 4, 6)), "target": rng.normal(size=(3, 4, 6))}
        assert_training_equivalence(
            lambda i: norm(lin(Tensor(i["x"]))),
            lambda pred, t: mse_loss(pred, t),
            inputs,
            m.parameters(),
        )

    def test_softmax_gather_concat_stack_transpose(self):
        rng = np.random.default_rng(5)
        table = Parameter(rng.normal(size=(7, 4)), name="table")
        w = Parameter(rng.normal(size=(8, 5)), name="w")
        idx = np.array([[0, 3, 6], [1, 1, 5]])

        def fn(i):
            rows = table.gather_rows(i["idx"])  # (2, 3, 4)
            both = concat([rows, rows.transpose(0, 1, 2)], axis=-1)  # (2, 3, 8)
            attn = (both @ w).softmax(axis=-1)  # (2, 3, 5)
            piled = stack([attn, attn * 2.0], axis=0)  # (2, 2, 3, 5)
            return piled.reshape(-1)

        inputs = {"idx": idx, "target": rng.normal(size=60)}
        assert_training_equivalence(fn, make_loss("mse"), inputs, [table, w])

    def test_unary_chain(self):
        rng = np.random.default_rng(6)
        p = Parameter(rng.normal(size=(4, 5)), name="p")

        def fn(i):
            t = Tensor(i["x"]) * p
            return (
                t.tanh() + t.sigmoid() + t.exp() * 0.01 + (t * t + 1.0).log()
                + t.abs() + t.leaky_relu(0.2) + t.clip_min(-0.5) - t.relu()
            ).sum(axis=-1)

        inputs = {"x": rng.normal(size=(4, 5)), "target": rng.normal(size=4)}
        assert_training_equivalence(fn, make_loss("mse"), inputs, [p])

    def test_max_and_getitem(self):
        rng = np.random.default_rng(7)
        p = Parameter(rng.normal(size=(3, 4, 5)), name="p")

        def fn(i):
            t = Tensor(i["x"]) * p
            return t.max(axis=1)[:, -1] + t[:, 0, :].sum(axis=-1)

        inputs = {"x": rng.normal(size=(3, 4, 5)), "target": rng.normal(size=3)}
        assert_training_equivalence(fn, make_loss("mse"), inputs, [p])

    def test_div_and_pow_vjps(self):
        rng = np.random.default_rng(8)
        a = Parameter(rng.normal(size=(3, 4)) + 3.0, name="a")
        b = Parameter(rng.normal(size=(4,)) + 3.0, name="b")

        def fn(i):
            return ((Tensor(i["x"]) / a) ** 2 / b).sum(axis=-1) ** 0.5

        inputs = {"x": rng.normal(size=(3, 4)), "target": rng.normal(size=3)}
        assert_training_equivalence(fn, make_loss("mse"), inputs, [a, b])

    def test_matmul_shapes(self):
        """2-D @ 2-D, batched 3-D @ 2-D (GEMM-accumulate collapse) and
        3-D @ 3-D all mirror the eager matmul backward."""
        rng = np.random.default_rng(9)
        w2 = Parameter(rng.normal(size=(5, 4)), name="w2")
        w3 = Parameter(rng.normal(size=(4, 4)), name="w3")

        def fn(i):
            x = Tensor(i["x"])  # (2, 3, 5)
            h = x @ w2  # 3D @ 2D
            s = h @ h.transpose(0, 2, 1)  # 3D @ 3D
            flat = (s @ h).reshape(6, 4) @ w3  # 2D @ 2D after reshape
            return flat.sum(axis=-1)

        inputs = {"x": rng.normal(size=(2, 3, 5)), "target": rng.normal(size=6)}
        assert_training_equivalence(fn, make_loss("mse"), inputs, [w2, w3], atol=1e-9)


class TestTrainingPlanContracts:
    def test_parameters_read_live_across_replays(self):
        rng = np.random.default_rng(10)
        m = MLP(4, [6], 1, rng)
        fn = lambda i: m(Tensor(i["x"])).reshape(3)
        inputs = {"x": rng.normal(size=(3, 4)), "target": rng.normal(size=3)}
        plan = trace_training_step(fn, make_loss("mse"), inputs, params=m.parameters())
        plan.replay(inputs)
        for p in m.parameters():
            p.data = p.data * 0.5  # optimizer-style reassignment
        el, eg = eager_grads(fn, make_loss("mse"), inputs, m.parameters())
        cl, cg = plan.replay(inputs)
        np.testing.assert_allclose(cl, el, rtol=0, atol=0)
        for a, b in zip(eg, cg):
            np.testing.assert_allclose(b, a, atol=1e-14, rtol=0)

    def test_stale_after_param_shape_change(self):
        rng = np.random.default_rng(11)
        m = MLP(4, [6], 1, rng)
        fn = lambda i: m(Tensor(i["x"])).reshape(3)
        inputs = {"x": rng.normal(size=(3, 4)), "target": rng.normal(size=3)}
        plan = trace_training_step(fn, make_loss("mse"), inputs, params=m.parameters())
        assert not plan.stale()
        p0 = m.parameters()[0]
        p0.data = np.vstack([p0.data, np.zeros((1,) + p0.data.shape[1:])])
        assert plan.stale()
        with pytest.raises(TraceError, match="stale"):
            plan.replay(inputs)

    def test_grads_write_into_provided_buffers(self):
        rng = np.random.default_rng(12)
        m = MLP(4, [6], 1, rng)
        fn = lambda i: m(Tensor(i["x"])).reshape(3)
        inputs = {"x": rng.normal(size=(3, 4)), "target": rng.normal(size=3)}
        plan = trace_training_step(fn, make_loss("mse"), inputs, params=m.parameters())
        outs = [np.full(p.data.shape, np.nan) for p in m.parameters()]
        plan.replay_into(inputs, outs)
        _, eg = eager_grads(fn, make_loss("mse"), inputs, m.parameters())
        for a, b in zip(eg, outs):
            np.testing.assert_allclose(b, a, atol=1e-14, rtol=0)

    def test_untouched_parameter_gets_zero_grad(self):
        rng = np.random.default_rng(13)
        used = Parameter(rng.normal(size=(3,)), name="used")
        unused = Parameter(rng.normal(size=(2,)), name="unused")
        fn = lambda i: Tensor(i["x"]) * used
        inputs = {"x": rng.normal(size=(3,)), "target": rng.normal(size=3)}
        plan = trace_training_step(fn, make_loss("mse"), inputs, params=[used, unused])
        _, grads = plan.replay(inputs)
        assert grads[0].shape == (3,)
        np.testing.assert_array_equal(grads[1], np.zeros(2))

    def test_active_dropout_rejected(self):
        rng = np.random.default_rng(14)

        class M(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(4, 4, rng)
                self.drop = Dropout(0.5, rng)

            def _forward_core(self, inp):
                return self.drop(self.lin(Tensor(inp["x"]))).reshape(-1)

        m = M()
        inputs = {"x": np.ones((2, 4)), "target": np.zeros(8)}
        with pytest.raises(TraceError, match="Dropout"):
            trace_training_step(m, make_loss("mse"), inputs)
        m.eval()
        trace_training_step(m, make_loss("mse"), inputs)  # eval mode traces fine

    def test_loss_independent_of_params_rejected(self):
        p = Parameter(np.ones(3), name="p")
        fn = lambda i: Tensor(i["x"]) * 1.0
        with pytest.raises(TraceError, match="independent"):
            trace_training_step(fn, make_loss("mse"), {"x": np.ones(3), "target": np.zeros(3)}, params=[p])

    def test_missing_target_rejected(self):
        p = Parameter(np.ones(3), name="p")
        with pytest.raises(TraceError, match="target"):
            trace_training_step(lambda i: Tensor(i["x"]) * p, make_loss("mse"), {"x": np.ones(3)}, params=[p])

    def test_non_float64_target_is_normalized_not_frozen(self):
        """A float32 target would be copied by the loss's dtype coercion,
        breaking identity binding — the trace must normalize it up front so
        replays with fresh targets still re-rank (regression test)."""
        rng = np.random.default_rng(16)
        m = MLP(4, [6], 1, rng)
        fn = lambda i: m(Tensor(i["x"])).reshape(5)
        loss_fn = make_loss("hinge", 0.1)
        inputs = {"x": rng.normal(size=(5, 4)), "target": rng.normal(size=5).astype(np.float32)}
        plan = trace_training_step(fn, loss_fn, inputs, params=m.parameters())
        fresh = {"x": inputs["x"], "target": np.ascontiguousarray(inputs["target"][::-1], dtype=np.float64)}
        el, eg = eager_grads(fn, loss_fn, fresh, m.parameters())
        cl, cg = plan.replay(fresh)
        np.testing.assert_allclose(cl, el, atol=0, rtol=0)
        for a, b in zip(eg, cg):
            np.testing.assert_allclose(b, a, atol=1e-14, rtol=0)

    def test_target_frozen_as_constant_rejected(self):
        """A loss that copies the target before use (losing identity) must
        be rejected instead of silently baking the trace batch's targets
        into every replay."""
        p = Parameter(np.ones(3), name="p")

        def copying_loss(pred, target):
            return mse_loss(pred, np.array(target, copy=True))

        with pytest.raises(TraceError, match="never consumed"):
            trace_training_step(
                lambda i: Tensor(i["x"]) * p,
                copying_loss,
                {"x": np.ones(3), "target": np.zeros(3)},
                params=[p],
            )

    def test_hook_cleanup_after_trace(self):
        rng = np.random.default_rng(15)
        m = MLP(4, [6], 1, rng)
        inputs = {"x": rng.normal(size=(3, 4)), "target": rng.normal(size=3)}
        trace_training_step(lambda i: m(Tensor(i["x"])).reshape(3), make_loss("mse"), inputs, params=m.parameters())
        assert not tracing()
        out = (Tensor(np.ones(3), requires_grad=True) * 2).sum()
        out.backward()  # eager autodiff still works


class TestFusedOptimizers:
    def _grads(self, params, rng):
        for p in params:
            p.grad = rng.normal(size=p.data.shape)

    def test_fused_adam_matches_adam_bitwise(self):
        rng = np.random.default_rng(20)
        shapes = [(5, 3), (3,), (4, 4), ()]
        p1 = [Parameter(rng.normal(size=s)) for s in shapes]
        p2 = [Parameter(q.data.copy()) for q in p1]
        o1 = Adam(p1, lr=1e-2, weight_decay=1e-4)
        o2 = FusedAdam(p2, lr=1e-2, weight_decay=1e-4)
        for step in range(7):
            grng = np.random.default_rng(100 + step)
            self._grads(p1, grng)
            grng = np.random.default_rng(100 + step)
            self._grads(p2, grng)
            o1.step()
            o2.step()
            for a, b in zip(p1, p2):
                np.testing.assert_array_equal(a.data, b.data)

    def test_fused_sgd_matches_sgd_bitwise(self):
        rng = np.random.default_rng(21)
        p1 = [Parameter(rng.normal(size=(4, 3))), Parameter(rng.normal(size=(3,)))]
        p2 = [Parameter(q.data.copy()) for q in p1]
        o1 = SGD(p1, lr=0.05, momentum=0.9, weight_decay=1e-3)
        o2 = FusedSGD(p2, lr=0.05, momentum=0.9, weight_decay=1e-3)
        for step in range(5):
            grng = np.random.default_rng(200 + step)
            self._grads(p1, grng)
            grng = np.random.default_rng(200 + step)
            self._grads(p2, grng)
            o1.step()
            o2.step()
            for a, b in zip(p1, p2):
                np.testing.assert_array_equal(a.data, b.data)

    def test_param_data_is_view_into_flat_buffer(self):
        p = [Parameter(np.ones((3, 2))), Parameter(np.zeros(4))]
        opt = FusedAdam(p, lr=1e-3)
        assert all(q.data.base is opt._flat for q in p)
        np.testing.assert_array_equal(p[0].data, np.ones((3, 2)))  # values preserved

    def test_grad_views_roundtrip_with_training_plan(self):
        rng = np.random.default_rng(22)
        m = MLP(4, [6], 1, rng)
        fn = lambda i: m(Tensor(i["x"])).reshape(3)
        inputs = {"x": rng.normal(size=(3, 4)), "target": rng.normal(size=3)}
        plan = trace_training_step(fn, make_loss("mse"), inputs, params=m.parameters())
        opt = FusedAdam(m.parameters(), lr=1e-3)
        _, eg = eager_grads(fn, make_loss("mse"), inputs, m.parameters())
        gv = opt.grad_views()
        plan.replay_into(inputs, gv)
        for a, b in zip(eg, gv):
            np.testing.assert_allclose(b, a, atol=1e-14, rtol=0)
        opt.step(grads_in_buffer=True)  # consumes the buffer without error

    def test_self_heals_external_data_reassignment(self):
        """load_state_dict-style replacement is re-absorbed into the flat
        buffer on the next step."""
        p = [Parameter(np.ones((2, 2))), Parameter(np.ones(3))]
        opt = FusedSGD(p, lr=0.1)
        p[0].data = np.full((2, 2), 5.0)  # external reassignment
        for q in p:
            q.grad = np.ones_like(q.data)
        opt.step()
        assert p[0].data.base is opt._flat
        np.testing.assert_allclose(p[0].data, 5.0 - 0.1)

    def test_rebuild_after_shape_change_preserves_moments(self):
        """add_device-style growth re-flattens; unchanged params keep their
        Adam moments (trajectories continue exactly)."""
        rng = np.random.default_rng(23)
        p = [Parameter(rng.normal(size=(2, 3))), Parameter(rng.normal(size=(4,)))]
        ref = [Parameter(q.data.copy()) for q in p]
        opt = FusedAdam(p, lr=1e-2)
        opt_ref = Adam(ref, lr=1e-2)
        g0 = [rng.normal(size=(2, 3)), rng.normal(size=(4,))]
        for q, r, g in zip(p, ref, g0):
            q.grad = g.copy()
            r.grad = g.copy()
        opt.step()
        opt_ref.step()
        # Grow the second parameter (like add_device growing hw_emb).
        grown = np.concatenate([p[1].data, np.zeros(1)])
        p[1].data = grown
        g1 = rng.normal(size=(2, 3))
        p[0].grad = g1.copy()
        p[1].grad = np.zeros(5)
        opt.step()
        # The unchanged param's second step must match a reference Adam that
        # kept its moments (the rebuild preserved m/v for matching shapes).
        ref[0].grad = g1.copy()
        ref[1].grad = None
        opt_ref.step()
        np.testing.assert_array_equal(p[0].data, ref[0].data)
        assert p[1].data.shape == (5,)

    def test_reset_state_and_set_lr(self):
        p = [Parameter(np.ones(3))]
        opt = FusedAdam(p, lr=0.1)
        p[0].grad = np.ones(3)
        opt.step()
        assert opt._t == 1
        opt.reset_state()
        assert opt._t == 0 and np.all(opt._m == 0) and np.all(opt._v == 0)
        opt.set_lr(0.5)
        assert opt.lr == 0.5
        sgd = FusedSGD([Parameter(np.ones(2))], lr=0.1, momentum=0.9)
        sgd.params[0].grad = np.ones(2)
        sgd.step()
        sgd.reset_state()
        assert np.all(sgd._velocity == 0)

    def test_sgd_reset_state_eager(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.ones(2)
        opt.step()
        assert np.any(opt._velocity[0] != 0)
        opt.reset_state()
        assert np.all(opt._velocity[0] == 0)


class TestInPlaceMutationSafety:
    def test_negation_fold_cache_revalidates_after_fused_step(self):
        """The sigmoid-fold's negated-weight cache is identity-keyed; fused
        optimizers mutate weights in place, so the cache must revalidate via
        the param-mutation epoch or serve stale negations."""
        rng = np.random.default_rng(30)
        w = Parameter(rng.normal(size=(5, 4)), name="w")

        def fn(i):
            return (Tensor(i["x"]) @ w).sigmoid().sum(axis=-1)  # matmul -> sigmoid fold

        x = rng.normal(size=(2, 3, 5))
        plan = trace(fn, {"x": x}, params=[w])
        assert plan.num_folded_gates == 1
        np.testing.assert_allclose(plan.replay({"x": x}), fn({"x": x}).numpy(), atol=0, rtol=0)
        opt = FusedSGD([w], lr=0.5)
        w.grad = np.ones_like(w.data)
        opt.step()  # in-place update through the flat-buffer view
        np.testing.assert_allclose(plan.replay({"x": x}), fn({"x": x}).numpy(), atol=0, rtol=0)

    def test_negation_fold_cache_revalidates_after_sync_views_copy(self):
        """_sync_views re-absorbs an externally reassigned param by copying
        into the flat view — contents change, identity doesn't — so it must
        bump the mutation epoch too (load_state_dict-after-compile path)."""
        rng = np.random.default_rng(31)
        w = Parameter(rng.normal(size=(5, 4)), name="w")

        def fn(i):
            return (Tensor(i["x"]) @ w).sigmoid().sum(axis=-1)

        x = rng.normal(size=(2, 3, 5))
        plan = trace(fn, {"x": x}, params=[w])
        assert plan.num_folded_gates == 1
        opt = FusedSGD([w], lr=0.5)
        plan.replay({"x": x})  # populate the negated-weight cache
        w.data = rng.normal(size=(5, 4))  # external reassignment (checkpoint load)
        opt.grad_views()  # triggers _sync_views' in-place re-absorption
        np.testing.assert_allclose(plan.replay({"x": x}), fn({"x": x}).numpy(), atol=0, rtol=0)
