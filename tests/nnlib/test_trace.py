"""Trace-and-replay engine: recording, leaf binding, optimization passes,
buffer safety, derived inputs, and concurrency."""
import threading

import numpy as np
import pytest

from repro.nnlib import MLP, Linear, Tensor, concat
from repro.nnlib.trace import CompiledPlan, TraceError, register_derived, trace, tracing


def make_mlp(seed=0, din=6, dout=2):
    return MLP(din, [8], dout, np.random.default_rng(seed))


class TestTraceBasics:
    def test_replay_matches_eager_bitwise(self):
        m = make_mlp()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(5, 6))
        plan = trace(lambda i: m(Tensor(i["x"])), {"x": x}, module=m)
        np.testing.assert_array_equal(plan.replay({"x": x}), m(Tensor(x)).numpy())
        # Fresh inputs of the same shape replay through the same plan.
        x2 = rng.normal(size=(5, 6))
        np.testing.assert_array_equal(plan.replay({"x": x2}), m(Tensor(x2)).numpy())

    def test_repeated_replay_reuses_buffers_without_corruption(self):
        m = make_mlp()
        rng = np.random.default_rng(2)
        x1, x2 = rng.normal(size=(4, 6)), rng.normal(size=(4, 6))
        plan = trace(lambda i: m(Tensor(i["x"])), {"x": x1}, module=m)
        out1 = plan.replay({"x": x1})
        out2 = plan.replay({"x": x2})
        # out1 must be a copy, not a view of a buffer the second replay reused.
        np.testing.assert_array_equal(out1, m(Tensor(x1)).numpy())
        np.testing.assert_array_equal(out2, m(Tensor(x2)).numpy())
        assert plan.num_buffers < plan.num_steps  # pooling collapsed buffers

    def test_parameters_are_read_live(self):
        m = make_mlp()
        x = np.ones((3, 6))
        plan = trace(lambda i: m(Tensor(i["x"])), {"x": x}, module=m)
        before = plan.replay({"x": x})
        for p in m.parameters():
            p.data = p.data * 2.0  # reassignment, like the optimizers do
        after = plan.replay({"x": x})
        assert not np.allclose(before, after)
        np.testing.assert_array_equal(after, m(Tensor(x)).numpy())

    def test_constants_are_hoisted_and_ops_counted(self):
        x = np.ones((2, 3))
        scale = Tensor(np.full((2, 3), 2.5))
        plan = trace(lambda i: (Tensor(i["x"]) * scale + 1.0).relu(), {"x": x})
        assert plan.num_constants == 2  # the scale array and the scalar 1.0
        assert plan.num_steps == 3
        np.testing.assert_array_equal(
            plan.replay({"x": x}), (Tensor(x) * scale + 1.0).relu().numpy()
        )

    def test_gather_indices_are_inputs_not_constants(self):
        table = Linear(4, 4, np.random.default_rng(0)).weight  # any param-ish table
        idx1 = np.array([0, 2, 3])
        plan = trace(
            lambda i: table.gather_rows(i["idx"]) * 2.0, {"idx": idx1}, params=[table]
        )
        idx2 = np.array([3, 3, 1])
        np.testing.assert_array_equal(plan.replay({"idx": idx2}), table.data[idx2] * 2.0)


class TestTraceErrors:
    def test_shape_mismatch_raises(self):
        m = make_mlp()
        x = np.ones((4, 6))
        plan = trace(lambda i: m(Tensor(i["x"])), {"x": x}, module=m)
        with pytest.raises(TraceError, match="shape-specialized"):
            plan.replay({"x": np.ones((5, 6))})

    def test_missing_input_raises(self):
        m = make_mlp()
        plan = trace(lambda i: m(Tensor(i["x"])), {"x": np.ones((2, 6))}, module=m)
        with pytest.raises(TraceError, match="missing plan input"):
            plan.replay({})

    def test_non_tensor_output_raises(self):
        with pytest.raises(TraceError, match="must return a Tensor"):
            trace(lambda i: i["x"], {"x": np.ones(3)})

    def test_untraced_output_raises(self):
        with pytest.raises(TraceError, match="not produced by tensor primitives"):
            trace(lambda i: Tensor(i["x"]), {"x": np.ones(3)})

    def test_tracing_flag_and_hook_cleanup_on_error(self):
        assert not tracing()

        def boom(i):
            assert tracing()
            raise RuntimeError("mid-trace failure")

        with pytest.raises(RuntimeError, match="mid-trace failure"):
            trace(boom, {"x": np.ones(3)})
        assert not tracing()
        # The tensor-op hook must be uninstalled: eager ops work normally.
        out = (Tensor(np.ones(3), requires_grad=True) * 2).sum()
        out.backward()


class TestDerivedInputs:
    def test_derived_recomputed_per_replay(self):
        calls = []

        def square(a):
            calls.append(a.copy())
            return a * a

        def fn(i):
            x = i["x"]
            sq = square(x)
            register_derived(sq, square, (x,))
            return Tensor(x) * Tensor(sq)

        x1 = np.array([1.0, 2.0, 3.0])
        plan = trace(fn, {"x": x1})
        x2 = np.array([2.0, 5.0, 7.0])
        np.testing.assert_array_equal(plan.replay({"x": x2}), x2 * (x2 * x2))
        # fn ran once at trace, then square re-ran per replay with live input.
        np.testing.assert_array_equal(calls[-1], x2)

    def test_register_derived_is_noop_outside_trace(self):
        register_derived(np.ones(3), lambda a: a, (np.ones(3),))  # must not raise


class TestOptimizationPasses:
    def test_elementwise_fusion_counts_and_is_exact(self):
        x = np.linspace(-2, 2, 12).reshape(3, 4)

        def fn(i):
            t = Tensor(i["x"])
            return ((t * 3.0).tanh().relu() + 1.0).exp()

        plan = trace(fn, {"x": x})
        assert plan.num_fused >= 3  # tanh/relu/add/exp chain collapses in place
        expected = ((Tensor(x) * 3.0).tanh().relu() + 1.0).exp().numpy()
        np.testing.assert_array_equal(plan.replay({"x": x}), expected)

    def test_fusion_never_mutates_a_multi_consumer_buffer(self):
        x = np.linspace(-1, 1, 8).reshape(2, 4)

        def fn(i):
            t = Tensor(i["x"])
            a = t * 2.0
            return a.relu() + a  # `a` has two consumers: relu may not clobber it

        plan = trace(fn, {"x": x})
        a = x * 2.0
        np.testing.assert_array_equal(plan.replay({"x": x}), np.where(a > 0, a, 0.0) + a)

    def test_fusion_never_mutates_view_sources(self):
        x = np.arange(6.0).reshape(2, 3)

        def fn(i):
            t = Tensor(i["x"])
            v = t.transpose()  # view of the *input*: must never be written
            return v.relu() + 0.0

        plan = trace(fn, {"x": x})
        out = plan.replay({"x": x})
        np.testing.assert_array_equal(out, np.maximum(x.T, 0.0))
        np.testing.assert_array_equal(x, np.arange(6.0).reshape(2, 3))  # untouched

    def test_gemm_collapse_matches_batched_matmul(self):
        rng = np.random.default_rng(3)
        w = Tensor(rng.normal(size=(5, 4)))
        x = rng.normal(size=(6, 3, 5))
        plan = trace(lambda i: Tensor(i["x"]) @ w, {"x": x})
        np.testing.assert_allclose(plan.replay({"x": x}), x @ w.data, atol=1e-12, rtol=0)

    def test_concat_and_reductions_replay(self):
        rng = np.random.default_rng(4)
        a, b = rng.normal(size=(3, 2)), rng.normal(size=(3, 2))

        def fn(i):
            t = concat([Tensor(i["a"]), Tensor(i["b"])], axis=1)
            return t.softmax(axis=-1).sum(axis=1) + t.max(axis=-1, keepdims=False)

        plan = trace(fn, {"a": a, "b": b})
        eager = fn({"a": a, "b": b}).numpy()
        np.testing.assert_array_equal(plan.replay({"a": a, "b": b}), eager)


class TestConcurrency:
    def test_concurrent_replays_are_serialized_and_correct(self):
        m = make_mlp(seed=5)
        rng = np.random.default_rng(6)
        xs = [rng.normal(size=(4, 6)) for _ in range(8)]
        plan = trace(lambda i: m(Tensor(i["x"])), {"x": xs[0]}, module=m)
        expected = [m(Tensor(x)).numpy() for x in xs]
        errors = []

        def worker(tid):
            try:
                for k in range(len(xs)):
                    j = (k + tid) % len(xs)
                    np.testing.assert_array_equal(plan.replay({"x": xs[j]}), expected[j])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert not errors, errors

    def test_nested_tracing_rejected(self):
        def fn(i):
            trace(lambda j: Tensor(j["y"]) * 1.0, {"y": np.ones(2)})
            return Tensor(i["x"]) * 1.0

        with pytest.raises(TraceError, match="nested"):
            trace(fn, {"x": np.ones(2)})
        assert not tracing()

    def test_training_thread_unaffected_by_concurrent_trace(self):
        """A trace on one thread must not record (or disturb) tensor ops on
        another thread — the hook is thread-local."""
        m = make_mlp(seed=7)
        stop = threading.Event()
        errors = []

        def train_loop():
            x = Tensor(np.ones((2, 6)), requires_grad=True)
            try:
                while not stop.is_set():
                    out = m(x).sum()
                    out.backward()
                    assert x.grad is not None
                    x.zero_grad()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        t = threading.Thread(target=train_loop)
        t.start()
        try:
            for _ in range(10):
                plan = trace(lambda i: m(Tensor(i["x"])), {"x": np.ones((3, 6))}, module=m)
                assert isinstance(plan, CompiledPlan)
        finally:
            stop.set()
            t.join(60.0)
        assert not errors, errors
