"""Loss-function semantics."""
import numpy as np
import pytest

from repro.nnlib import (
    Tensor,
    bce_with_logits_loss,
    cross_entropy_loss,
    gaussian_kl_loss,
    l1_loss,
    mse_loss,
    pairwise_hinge_loss,
)


class TestMSEAndL1:
    def test_mse_zero_at_target(self):
        p = Tensor([1.0, 2.0])
        assert mse_loss(p, np.array([1.0, 2.0])).item() == 0.0

    def test_mse_value(self):
        assert mse_loss(Tensor([0.0, 0.0]), np.array([1.0, 3.0])).item() == pytest.approx(5.0)

    def test_l1_value(self):
        assert l1_loss(Tensor([0.0, 0.0]), np.array([1.0, -3.0])).item() == pytest.approx(2.0)


class TestBCE:
    def test_matches_reference(self):
        logits = np.array([-2.0, 0.0, 3.0])
        targets = np.array([0.0, 1.0, 1.0])
        ref = -(targets * np.log(1 / (1 + np.exp(-logits))) + (1 - targets) * np.log(1 - 1 / (1 + np.exp(-logits))))
        got = bce_with_logits_loss(Tensor(logits), targets).item()
        assert got == pytest.approx(ref.mean(), rel=1e-9)

    def test_extreme_logits_finite(self):
        loss = bce_with_logits_loss(Tensor([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())


class TestPairwiseHinge:
    def test_zero_when_well_separated(self):
        pred = Tensor([0.0, 1.0, 2.0])
        target = np.array([0.0, 1.0, 2.0])
        assert pairwise_hinge_loss(pred, target, margin=0.1).item() == 0.0

    def test_penalizes_inversions(self):
        good = pairwise_hinge_loss(Tensor([0.0, 1.0]), np.array([0.0, 1.0])).item()
        bad = pairwise_hinge_loss(Tensor([1.0, 0.0]), np.array([0.0, 1.0])).item()
        assert bad > good

    def test_single_sample_is_zero(self):
        loss = pairwise_hinge_loss(Tensor([5.0], requires_grad=True), np.array([1.0]))
        assert loss.item() == 0.0
        loss.backward()  # should not crash

    def test_all_equal_targets_zero(self):
        loss = pairwise_hinge_loss(Tensor([1.0, 2.0], requires_grad=True), np.array([3.0, 3.0]))
        assert loss.item() == 0.0

    def test_margin_effect(self):
        pred = Tensor([0.0, 0.05])
        target = np.array([0.0, 1.0])
        small = pairwise_hinge_loss(pred, target, margin=0.01).item()
        large = pairwise_hinge_loss(pred, target, margin=1.0).item()
        assert large > small

    def test_gradient_flows(self):
        pred = Tensor([1.0, 0.0], requires_grad=True)
        pairwise_hinge_loss(pred, np.array([0.0, 1.0])).backward()
        assert pred.grad is not None and np.any(pred.grad != 0)


class TestCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        assert cross_entropy_loss(logits, np.array([0, 1])).item() == pytest.approx(0.0, abs=1e-6)

    def test_uniform_logits(self):
        logits = Tensor(np.zeros((2, 4)))
        assert cross_entropy_loss(logits, np.array([0, 3])).item() == pytest.approx(np.log(4))

    def test_mask_selects_positions(self):
        logits = Tensor(np.zeros((1, 2, 4)))
        targets = np.array([[0, 3]])
        mask = np.array([[True, False]])
        assert cross_entropy_loss(logits, targets, mask=mask).item() == pytest.approx(np.log(4))

    def test_empty_mask_no_nan(self):
        logits = Tensor(np.zeros((1, 2, 4)), requires_grad=True)
        loss = cross_entropy_loss(logits, np.array([[0, 1]]), mask=np.zeros((1, 2), dtype=bool))
        assert loss.item() == 0.0


class TestGaussianKL:
    def test_standard_normal_is_zero(self):
        mu = Tensor(np.zeros((3, 4)))
        logvar = Tensor(np.zeros((3, 4)))
        assert gaussian_kl_loss(mu, logvar).item() == pytest.approx(0.0)

    def test_positive_otherwise(self):
        mu = Tensor(np.ones((3, 4)))
        logvar = Tensor(np.full((3, 4), -1.0))
        assert gaussian_kl_loss(mu, logvar).item() > 0
