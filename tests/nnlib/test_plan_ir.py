"""Plan IR: serialization round-trips, load-time validation, re-binding.

The contract under test: a compiled plan lowered to :class:`PlanIR`,
saved, and loaded into a fresh plan replays **bitwise-identically** —
including the optimizer-visible behaviours (live parameter reads, derived
inputs recomputed per batch) — and malformed or stale artifacts are
rejected with :class:`PlanIRError` at load time, not mid-replay.
"""
import numpy as np
import pytest

from repro.nnlib import (
    Linear,
    Module,
    Tensor,
    mse_loss,
    pairwise_hinge_loss,
    trace,
    trace_training_step,
)
from repro.nnlib.ir import (
    PlanIRError,
    derived_fn_name,
    ir_from_payload,
    load_plan,
    payload_from_ir,
    read_plan_metadata,
    register_derived_fn,
    resolve_derived_fn,
    save_plan,
    validate_ir,
)
from repro.nnlib.serialization import (
    PLAN_FORMAT_VERSION,
    load_plan_archive,
    plan_format_version,
    save_plan_archive,
)
from repro.nnlib.trace import TraceError, notify_param_mutation


class TinyNet(Module):
    def __init__(self, rng, in_dim=6, hidden=10):
        super().__init__()
        self.a = Linear(in_dim, hidden, rng=rng)
        self.b = Linear(hidden, 1, rng=rng)

    def _forward_core(self, inputs):
        x = Tensor(inputs["x"])
        return self.b(self.a(x).relu().sigmoid())


@pytest.fixture
def net():
    return TinyNet(np.random.default_rng(7)).eval()


@pytest.fixture
def batch():
    rng = np.random.default_rng(3)
    return {"x": rng.standard_normal((5, 6))}


class TestPayloadRoundTrip:
    def test_ir_survives_payload_codec(self, net, batch):
        plan = trace(net._forward_core, batch, module=net)
        payload, consts = payload_from_ir(plan.ir)
        ir2 = ir_from_payload(payload, consts)
        validate_ir(ir2)
        p2, c2 = payload_from_ir(ir2)
        assert payload == p2
        assert all(np.array_equal(consts[k], c2[k]) for k in consts)

    def test_payload_is_json_plain(self, net, batch):
        import json

        plan = trace(net._forward_core, batch, module=net)
        payload, _ = payload_from_ir(plan.ir)
        json.dumps(payload)  # no ndarray/tuple leakage

    def test_malformed_payload_raises(self):
        with pytest.raises(PlanIRError, match="malformed plan archive payload"):
            ir_from_payload({"kind": "inference"}, {})


class TestArchiveRoundTrip:
    def test_inference_bitwise(self, net, batch, tmp_path):
        plan = trace(net._forward_core, batch, module=net)
        path = tmp_path / "fwd.npz"
        plan.save(path, metadata={"note": "t"})
        loaded = load_plan(path, module=net)
        fresh = {"x": np.random.default_rng(11).standard_normal((5, 6))}
        assert np.array_equal(plan.replay(fresh), loaded.replay(fresh))
        assert read_plan_metadata(path)["note"] == "t"
        assert plan_format_version(path) == PLAN_FORMAT_VERSION

    def test_scalar_consts_keep_0d_shape(self, net, batch, tmp_path):
        # Regression: np.ascontiguousarray promotes () to (1,), which made
        # loaded plans fail in-place kernels on scalar-output steps.
        rng = np.random.default_rng(0)
        tgt = rng.standard_normal((5, 1))
        tp = trace_training_step(net, mse_loss, {**batch, "target": tgt})
        path = tmp_path / "train.npz"
        tp.save(path)
        _, consts, _, _ = load_plan_archive(path)
        shapes_in = {slot: np.shape(a) for slot, a in tp.plan.ir.consts}
        for slot, arr in consts.items():
            assert arr.shape == shapes_in[slot]

    def test_training_bitwise_and_live_weights(self, net, batch, tmp_path):
        rng = np.random.default_rng(0)
        inputs = {**batch, "target": rng.standard_normal((5, 1))}
        tp = trace_training_step(net, mse_loss, inputs)
        path = tmp_path / "train.npz"
        tp.save(path)
        tp2 = load_plan(path, module=net)
        l0, g0 = tp.replay(inputs)
        l1, g1 = tp2.replay(inputs)
        assert l0 == l1
        assert all(np.array_equal(a, b) for a, b in zip(g0, g1))
        # Loaded plans bind Parameters by path: a weight update must be
        # visible to both plans identically (no weights frozen in the IR).
        for p in net.parameters():
            p.data *= 1.01
        notify_param_mutation()
        l0b, _ = tp.replay(inputs)
        l1b, _ = tp2.replay(inputs)
        assert l0b == l1b
        assert l0b != l0

    def test_derived_inputs_recompute_per_batch(self, net, batch, tmp_path):
        # The hinge mask/pair-count are derived from the live target; a
        # loaded plan must resolve the registered recipes and re-rank.
        rng = np.random.default_rng(1)
        inputs = {**batch, "target": rng.standard_normal(5)}
        tp = trace_training_step(net, pairwise_hinge_loss, inputs)
        path = tmp_path / "hinge.npz"
        tp.save(path)
        tp2 = load_plan(path, module=net)
        fresh = {
            "x": rng.standard_normal((5, 6)),
            "target": rng.standard_normal(5),
        }
        l0, g0 = tp.replay(fresh)
        l1, g1 = tp2.replay(fresh)
        assert l0 == l1
        assert all(np.array_equal(a, b) for a, b in zip(g0, g1))

    def test_checkpoint_is_not_a_plan(self, net, tmp_path):
        from repro.nnlib.serialization import save_checkpoint

        path = tmp_path / "ckpt.npz"
        save_checkpoint(net, path)
        with pytest.raises(ValueError, match="not a compiled-plan artifact"):
            load_plan(path, module=net)


class TestLoadValidation:
    def _tampered(self, net, batch, tmp_path, mutate):
        plan = trace(net._forward_core, batch, module=net)
        path = tmp_path / "fwd.npz"
        plan.save(path)
        payload, consts, meta, _ = load_plan_archive(path)
        mutate(payload)
        save_plan_archive(path, payload, consts, meta)
        return path

    def test_unknown_opcode_rejected(self, net, batch, tmp_path):
        def mutate(payload):
            payload["ops"][0][0] = "quantized_matmul"  # [op, out, ins, aux, shape]

        path = self._tampered(net, batch, tmp_path, mutate)
        with pytest.raises(PlanIRError, match="no replay kernel registered for opcode"):
            load_plan(path, module=net)

    def test_unknown_aux_attr_rejected(self, net, batch, tmp_path):
        def mutate(payload):
            payload["ops"][0][3]["precision"] = "f32"  # aux dict of step 0

        path = self._tampered(net, batch, tmp_path, mutate)
        with pytest.raises(PlanIRError, match="unknown aux attribute"):
            load_plan(path, module=net)

    def test_future_format_rejected(self, net, batch, tmp_path, monkeypatch):
        import repro.nnlib.serialization as ser

        plan = trace(net._forward_core, batch, module=net)
        path = tmp_path / "fwd.npz"
        monkeypatch.setattr(ser, "PLAN_FORMAT_VERSION", PLAN_FORMAT_VERSION + 1)
        plan.save(path)
        monkeypatch.undo()
        with pytest.raises(PlanIRError, match="newer than this build"):
            load_plan(path, module=net)

    def test_wrong_module_rejected(self, net, batch, tmp_path):
        plan = trace(net._forward_core, batch, module=net)
        path = tmp_path / "fwd.npz"
        plan.save(path)
        other = Linear(6, 1, rng=np.random.default_rng(0))
        with pytest.raises(PlanIRError, match="which the given module does not have"):
            load_plan(path, module=other)

    def test_module_required_when_params_bound(self, net, batch, tmp_path):
        plan = trace(net._forward_core, batch, module=net)
        path = tmp_path / "fwd.npz"
        plan.save(path)
        with pytest.raises(PlanIRError, match="pass the module"):
            load_plan(path)

    def test_stale_training_artifact_rejected(self, batch, tmp_path):
        net = TinyNet(np.random.default_rng(7)).eval()
        rng = np.random.default_rng(0)
        inputs = {**batch, "target": rng.standard_normal((5, 1))}
        tp = trace_training_step(net, mse_loss, inputs)
        path = tmp_path / "train.npz"
        tp.save(path)
        w = net.a.weight
        w.data = np.concatenate([w.data, w.data[:1]], axis=0)
        notify_param_mutation()
        with pytest.raises(PlanIRError, match="stale training-plan artifact"):
            load_plan(path, module=net)

    def test_unmodule_plan_cannot_save(self, batch):
        # Traced without module=: parameters have no dotted paths.
        net = TinyNet(np.random.default_rng(7)).eval()
        plan = trace(net._forward_core, batch, params=net.parameters())
        with pytest.raises(PlanIRError, match="no dotted path"):
            save_plan(plan, "unused.npz")


class TestDerivedRegistry:
    def test_known_recipes_resolve(self):
        for name in (
            "losses.hinge_mask",
            "losses.hinge_pair_count",
            "trace.concat_columns",
            "gnn.gat_mask",
            "gnn.gat_neg_inf",
        ):
            fn = resolve_derived_fn(name)
            assert callable(fn)
            assert derived_fn_name(fn) == name

    def test_unknown_recipe_raises(self):
        with pytest.raises(PlanIRError, match="unknown derived input recipe"):
            resolve_derived_fn("nope.not_registered")

    def test_conflicting_registration_raises(self):
        @register_derived_fn("test.plan_ir_conflict")
        def one(x):
            return x

        with pytest.raises(PlanIRError, match="already registered"):

            @register_derived_fn("test.plan_ir_conflict")
            def two(x):
                return x


class TestTraceErrorContext:
    def test_1d_matmul_backward_names_op_and_shapes(self):
        # Satellite fix: unsupported-op errors must carry opcode and the
        # operand shapes so an eager fallback is diagnosable from logs.
        class VecNet(Module):
            def __init__(self):
                super().__init__()
                self.w = Linear(4, 4, rng=np.random.default_rng(0))

            def _forward_core(self, inputs):
                x = Tensor(inputs["x"])  # (4,) vector: 1-D @ 2-D matmul
                return x @ self.w.weight

        net = VecNet().eval()
        inputs = {
            "x": np.random.default_rng(0).standard_normal(4),
            "target": np.random.default_rng(1).standard_normal(4),
        }
        with pytest.raises(TraceError, match=r"matmul.*1-D.*\(4,\)"):
            trace_training_step(net, mse_loss, inputs)
