"""Forward-pass correctness of Tensor ops against plain numpy."""
import numpy as np
import pytest

from repro.nnlib import Tensor, concat, stack, no_grad


class TestArithmetic:
    def test_add(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        np.testing.assert_allclose((a + b).numpy(), [4.0, 6.0])

    def test_add_scalar_and_radd(self):
        a = Tensor([1.0, 2.0])
        np.testing.assert_allclose((a + 1.0).numpy(), [2.0, 3.0])
        np.testing.assert_allclose((1.0 + a).numpy(), [2.0, 3.0])

    def test_broadcast_add(self):
        a = Tensor(np.ones((3, 4)))
        b = Tensor(np.arange(4.0))
        np.testing.assert_allclose((a + b).numpy(), 1.0 + np.arange(4.0) * np.ones((3, 4)))

    def test_mul_div_sub_neg(self):
        a, b = Tensor([2.0, 4.0]), Tensor([4.0, 2.0])
        np.testing.assert_allclose((a * b).numpy(), [8.0, 8.0])
        np.testing.assert_allclose((a / b).numpy(), [0.5, 2.0])
        np.testing.assert_allclose((a - b).numpy(), [-2.0, 2.0])
        np.testing.assert_allclose((-a).numpy(), [-2.0, -4.0])
        np.testing.assert_allclose((3.0 - a).numpy(), [1.0, -1.0])
        np.testing.assert_allclose((8.0 / a).numpy(), [4.0, 2.0])

    def test_pow(self):
        a = Tensor([2.0, 3.0])
        np.testing.assert_allclose((a**2).numpy(), [4.0, 9.0])
        with pytest.raises(TypeError):
            a ** Tensor([1.0])

    def test_matmul_2d(self):
        a = np.random.default_rng(0).normal(size=(3, 4))
        b = np.random.default_rng(1).normal(size=(4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).numpy(), a @ b)

    def test_matmul_batched(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(2, 4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).numpy(), a @ b)

    def test_matmul_broadcast_matrix(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(2, 3, 4))
        w = rng.normal(size=(4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(w)).numpy(), a @ w)


class TestElementwise:
    @pytest.mark.parametrize(
        "method,ref",
        [
            ("exp", np.exp),
            ("log", np.log),
            ("tanh", np.tanh),
            ("sqrt", np.sqrt),
            ("abs", np.abs),
        ],
    )
    def test_unary(self, method, ref):
        x = np.array([0.5, 1.0, 2.0])
        np.testing.assert_allclose(getattr(Tensor(x), method)().numpy(), ref(x))

    def test_sigmoid(self):
        x = np.array([-1.0, 0.0, 1.0])
        np.testing.assert_allclose(Tensor(x).sigmoid().numpy(), 1 / (1 + np.exp(-x)))

    def test_relu_leaky_clip(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_allclose(Tensor(x).relu().numpy(), [0.0, 0.0, 3.0])
        np.testing.assert_allclose(Tensor(x).leaky_relu(0.1).numpy(), [-0.2, 0.0, 3.0])
        np.testing.assert_allclose(Tensor(x).clip_min(0.5).numpy(), [0.5, 0.5, 3.0])


class TestReductionsAndShape:
    def test_sum_axis_keepdims(self):
        x = np.arange(6.0).reshape(2, 3)
        np.testing.assert_allclose(Tensor(x).sum().numpy(), 15.0)
        np.testing.assert_allclose(Tensor(x).sum(axis=0).numpy(), x.sum(0))
        np.testing.assert_allclose(Tensor(x).sum(axis=1, keepdims=True).numpy(), x.sum(1, keepdims=True))

    def test_mean_max(self):
        x = np.arange(6.0).reshape(2, 3)
        np.testing.assert_allclose(Tensor(x).mean(axis=1).numpy(), x.mean(1))
        np.testing.assert_allclose(Tensor(x).max(axis=0).numpy(), x.max(0))

    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(4, 5))
        s = Tensor(x).softmax(axis=-1).numpy()
        np.testing.assert_allclose(s.sum(-1), np.ones(4))
        np.testing.assert_allclose(s, np.exp(x) / np.exp(x).sum(-1, keepdims=True))

    def test_log_softmax_matches_log_of_softmax(self):
        x = np.random.default_rng(0).normal(size=(4, 5))
        np.testing.assert_allclose(
            Tensor(x).log_softmax(-1).numpy(), np.log(Tensor(x).softmax(-1).numpy()), atol=1e-12
        )

    def test_softmax_large_values_stable(self):
        s = Tensor(np.array([1000.0, 1001.0])).softmax().numpy()
        assert np.isfinite(s).all()

    def test_reshape_transpose(self):
        x = np.arange(24.0).reshape(2, 3, 4)
        np.testing.assert_allclose(Tensor(x).reshape(6, 4).numpy(), x.reshape(6, 4))
        np.testing.assert_allclose(Tensor(x).reshape(-1).numpy(), x.reshape(-1))
        np.testing.assert_allclose(Tensor(x).transpose(0, 2, 1).numpy(), x.transpose(0, 2, 1))
        np.testing.assert_allclose(Tensor(x.reshape(6, 4)).T.numpy(), x.reshape(6, 4).T)

    def test_getitem(self):
        x = np.arange(12.0).reshape(3, 4)
        np.testing.assert_allclose(Tensor(x)[1].numpy(), x[1])
        np.testing.assert_allclose(Tensor(x)[:, 2].numpy(), x[:, 2])

    def test_gather_rows(self):
        x = np.arange(12.0).reshape(4, 3)
        idx = np.array([[0, 2], [3, 3]])
        np.testing.assert_allclose(Tensor(x).gather_rows(idx).numpy(), x[idx])


class TestConcatStack:
    def test_concat(self):
        a, b = np.ones((2, 3)), np.zeros((2, 2))
        np.testing.assert_allclose(concat([Tensor(a), Tensor(b)], axis=1).numpy(), np.concatenate([a, b], 1))

    def test_stack(self):
        a, b = np.ones(3), np.zeros(3)
        np.testing.assert_allclose(stack([Tensor(a), Tensor(b)], axis=0).numpy(), np.stack([a, b]))


class TestAutogradBasics:
    def test_requires_grad_propagates(self):
        a = Tensor([1.0], requires_grad=True)
        assert (a * 2).requires_grad
        assert not (Tensor([1.0]) * 2).requires_grad

    def test_backward_accumulates(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a).backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_backward_without_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_no_grad_context(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_is_grad_enabled_reflects_context(self):
        from repro.nnlib import is_grad_enabled

        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_is_thread_local(self):
        # A serving thread in no_grad() must not disable tape construction
        # for a concurrently training thread (or re-enable it on exit).
        import threading

        inference_entered = threading.Event()
        inference_done = threading.Event()
        trainer_tape: list[bool] = []

        def inference():
            with no_grad():
                inference_entered.set()
                inference_done.wait(5.0)
                assert not (Tensor([1.0], requires_grad=True) * 2).requires_grad

        def trainer():
            assert inference_entered.wait(5.0)
            # Runs while the other thread sits inside no_grad().
            trainer_tape.append((Tensor([1.0], requires_grad=True) * 2).requires_grad)
            inference_done.set()

        t1 = threading.Thread(target=inference)
        t2 = threading.Thread(target=trainer)
        t1.start(); t2.start()
        t1.join(10.0); t2.join(10.0)
        assert trainer_tape == [True]

    def test_detach(self):
        a = Tensor([1.0], requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        assert d.numpy() is a.numpy()

    def test_shared_subexpression_gradient(self):
        # y = x*x + x*x -> dy/dx = 4x
        x = Tensor([3.0], requires_grad=True)
        y = x * x
        (y + y).backward()
        np.testing.assert_allclose(x.grad, [12.0])
