"""Checkpoint save/load round trips."""
import numpy as np
import pytest

from repro.nnlib import MLP, Tensor
from repro.nnlib.serialization import load_checkpoint, save_checkpoint


@pytest.fixture
def model():
    return MLP(4, [8], 2, np.random.default_rng(0))


class TestCheckpoint:
    def test_roundtrip_preserves_outputs(self, model, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path, metadata={"task": "N1", "epochs": 10})
        other = MLP(4, [8], 2, np.random.default_rng(99))
        meta = load_checkpoint(other, path)
        assert meta == {"task": "N1", "epochs": 10}
        x = Tensor(np.ones((3, 4)))
        np.testing.assert_allclose(model(x).numpy(), other(x).numpy())

    def test_no_metadata(self, model, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path)
        assert load_checkpoint(model, path) == {}

    def test_mismatched_model_raises(self, model, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path)
        wrong = MLP(4, [16], 2, np.random.default_rng(0))
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(wrong, path)

    def test_creates_parent_dirs(self, model, tmp_path):
        path = tmp_path / "deep" / "nested" / "ckpt.npz"
        save_checkpoint(model, path)
        assert path.exists()

    def test_nasflat_checkpoint(self, tmp_path, tiny_space, rng):
        from repro.predictors import NASFLATConfig, NASFLATPredictor

        cfg = NASFLATConfig(op_emb_dim=8, node_emb_dim=8, hw_emb_dim=8, gnn_dims=(16,), ophw_gnn_dims=(16,), ophw_mlp_dims=(16,), head_dims=(16,))
        model = NASFLATPredictor(tiny_space, ["a", "b"], rng, config=cfg)
        path = tmp_path / "nasflat.npz"
        save_checkpoint(model, path, metadata={"devices": model.devices})
        clone = NASFLATPredictor(tiny_space, ["a", "b"], np.random.default_rng(5), config=cfg)
        meta = load_checkpoint(clone, path)
        assert meta["devices"] == ["a", "b"]
        np.testing.assert_allclose(clone.hw_emb.weight.data, model.hw_emb.weight.data)
