"""Checkpoint save/load round trips, including v1→v2 format migration."""
import numpy as np
import pytest

from repro.nnlib import MLP, Tensor
from repro.nnlib.serialization import (
    FORMAT_VERSION,
    checkpoint_format_version,
    load_checkpoint,
    load_state_bundle,
    save_checkpoint,
    save_state_bundle,
)


@pytest.fixture
def model():
    return MLP(4, [8], 2, np.random.default_rng(0))


def downgrade_to_v1(path, drop_prefixes=()):
    """Rewrite an archive as the pre-versioning (v1) format.

    v1 archives have no format tag and predate nested-container discovery,
    so keys under ``drop_prefixes`` (e.g. ``gnn.branches.``) do not exist.
    """
    with np.load(path) as archive:
        payload = {
            k: archive[k]
            for k in archive.files
            if k != "__repro_format__" and not any(k.startswith(p) for p in drop_prefixes)
        }
    np.savez(path, **payload)


class TestCheckpoint:
    def test_roundtrip_preserves_outputs(self, model, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path, metadata={"task": "N1", "epochs": 10})
        other = MLP(4, [8], 2, np.random.default_rng(99))
        meta = load_checkpoint(other, path)
        assert meta == {"task": "N1", "epochs": 10}
        x = Tensor(np.ones((3, 4)))
        np.testing.assert_allclose(model(x).numpy(), other(x).numpy())

    def test_no_metadata(self, model, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path)
        assert load_checkpoint(model, path) == {}

    def test_mismatched_model_raises(self, model, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path)
        wrong = MLP(4, [16], 2, np.random.default_rng(0))
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(wrong, path)

    def test_creates_parent_dirs(self, model, tmp_path):
        path = tmp_path / "deep" / "nested" / "ckpt.npz"
        save_checkpoint(model, path)
        assert path.exists()

    def test_writes_current_format_version(self, model, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path)
        assert checkpoint_format_version(path) == FORMAT_VERSION == 2
        save_state_bundle(tmp_path / "bundle.npz", {"m": model.state_dict()})
        bundles, meta, version = load_state_bundle(tmp_path / "bundle.npz")
        assert version == 2 and meta == {} and set(bundles) == {"m"}

    def test_nasflat_checkpoint(self, tmp_path, tiny_space, rng):
        from repro.predictors import NASFLATConfig, NASFLATPredictor

        cfg = NASFLATConfig(op_emb_dim=8, node_emb_dim=8, hw_emb_dim=8, gnn_dims=(16,), ophw_gnn_dims=(16,), ophw_mlp_dims=(16,), head_dims=(16,))
        model = NASFLATPredictor(tiny_space, ["a", "b"], rng, config=cfg)
        path = tmp_path / "nasflat.npz"
        save_checkpoint(model, path, metadata={"devices": model.devices})
        clone = NASFLATPredictor(tiny_space, ["a", "b"], np.random.default_rng(5), config=cfg)
        meta = load_checkpoint(clone, path)
        assert meta["devices"] == ["a", "b"]
        np.testing.assert_allclose(clone.hw_emb.weight.data, model.hw_emb.weight.data)

    def test_checkpoint_contains_gnn_branches(self, tmp_path, tiny_space, rng):
        """v2 checkpoints persist the (now trainable) GNN branch weights."""
        from repro.predictors import NASFLATConfig, NASFLATPredictor

        cfg = NASFLATConfig(op_emb_dim=8, node_emb_dim=8, hw_emb_dim=8, gnn_dims=(16,), ophw_gnn_dims=(16,), ophw_mlp_dims=(16,), head_dims=(16,))
        model = NASFLATPredictor(tiny_space, ["a"], rng, config=cfg)
        path = tmp_path / "nasflat.npz"
        save_checkpoint(model, path)
        with np.load(path) as archive:
            branch_keys = [k for k in archive.files if ".branches." in k]
        assert any(k.startswith("gnn.branches.dgf.") for k in branch_keys)
        assert any(k.startswith("gnn.branches.gat.") for k in branch_keys)
        assert any(k.startswith("ophw_gnn.branches.") for k in branch_keys)


class TestV1Migration:
    """Pre-versioning archives (no GNN branch keys) must keep loading."""

    def _nasflat(self, tiny_space, seed):
        from repro.predictors import NASFLATConfig, NASFLATPredictor

        cfg = NASFLATConfig(op_emb_dim=8, node_emb_dim=8, hw_emb_dim=8, gnn_dims=(16,), ophw_gnn_dims=(16,), ophw_mlp_dims=(16,), head_dims=(16,))
        return NASFLATPredictor(tiny_space, ["a", "b"], np.random.default_rng(seed), config=cfg)

    def test_version_of_v1_archive_is_1(self, model, tmp_path):
        path = tmp_path / "old.npz"
        save_checkpoint(model, path)
        downgrade_to_v1(path)
        assert checkpoint_format_version(path) == 1

    def test_v1_loads_with_warning_and_keeps_init_for_missing(self, tmp_path, tiny_space):
        src = self._nasflat(tiny_space, 0)
        path = tmp_path / "old.npz"
        save_checkpoint(src, path, metadata={"task": "T"})
        downgrade_to_v1(path, drop_prefixes=("gnn.branches.", "ophw_gnn.branches."))

        dst = self._nasflat(tiny_space, 7)
        init_branch = dst.gnn.branches["dgf"][0].w_f.weight.data.copy()
        with pytest.warns(UserWarning, match="format v1"):
            meta = load_checkpoint(dst, path)
        assert meta == {"task": "T"}
        # Saved keys were loaded; missing branch keys kept their init values.
        np.testing.assert_array_equal(dst.op_emb.weight.data, src.op_emb.weight.data)
        np.testing.assert_array_equal(dst.gnn.branches["dgf"][0].w_f.weight.data, init_branch)

    def test_v2_load_stays_strict(self, tmp_path, tiny_space):
        src = self._nasflat(tiny_space, 0)
        path = tmp_path / "new.npz"
        save_checkpoint(src, path)
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files if ".branches." not in k}
        np.savez(path, **payload)  # v2 tag kept, branch keys removed: corrupt
        with pytest.raises(KeyError, match="missing"):
            load_checkpoint(self._nasflat(tiny_space, 7), path)

    def test_v1_bundle_roundtrip_via_baseline(self, tmp_path, tiny_space):
        """A BRP-NAS bundle saved pre-v2 (no branch keys) still loads."""
        from repro.predictors.baselines import BRPNASPredictor

        src = BRPNASPredictor(tiny_space, np.random.default_rng(0), emb_dim=8, gnn_dims=(8,))
        path = tmp_path / "brp.npz"
        src.save(path)
        downgrade_to_v1(path, drop_prefixes=("model::gnn.branches.",))
        dst = BRPNASPredictor(tiny_space, np.random.default_rng(3), emb_dim=8, gnn_dims=(8,))
        with pytest.warns(UserWarning, match="format v1"):
            dst.load(path)
        np.testing.assert_array_equal(dst.op_emb.weight.data, src.op_emb.weight.data)

    def test_v1_wrong_model_still_rejected(self, model, tmp_path):
        """Leniency does not extend to wrong-model v1 checkpoints."""
        path = tmp_path / "old.npz"
        save_checkpoint(model, path)  # MLP(4, [8], 2)
        downgrade_to_v1(path)
        wrong = MLP(4, [16], 2, np.random.default_rng(0))  # shape mismatch
        with pytest.raises(ValueError, match="shape mismatch"):
            load_checkpoint(wrong, path)

        from repro.nnlib import Linear, Module

        class Disjoint(Module):
            def __init__(self):
                super().__init__()
                self.other = Linear(3, 3, np.random.default_rng(0))

        with pytest.raises(KeyError, match="unexpected keys"):
            load_checkpoint(Disjoint(), path)

    def test_v1_no_overlap_rejected(self, model, tmp_path):
        """A v1 archive sharing no names with the module must not 'load'."""
        path = tmp_path / "old.npz"
        save_state = {"completely.unrelated": np.zeros(2)}
        np.savez(path, **save_state)  # no version tag -> v1
        with pytest.raises(KeyError):
            load_checkpoint(model, path)

    def test_complete_v1_archive_loads_without_warning(self, model, tmp_path):
        """v1 archives of container-free models are complete: no warning."""
        import warnings as _warnings

        path = tmp_path / "old.npz"
        save_checkpoint(model, path, metadata={"task": "T"})
        downgrade_to_v1(path)
        other = MLP(4, [8], 2, np.random.default_rng(5))
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")  # any warning fails the test
            meta = load_checkpoint(other, path)
        assert meta == {"task": "T"}
        np.testing.assert_array_equal(
            other.net.layers[0].weight.data, model.net.layers[0].weight.data
        )

    def test_v1_to_v2_resave_upgrades(self, tmp_path, tiny_space):
        """Loading a v1 checkpoint and saving again produces a full v2 one."""
        src = self._nasflat(tiny_space, 0)
        path = tmp_path / "old.npz"
        save_checkpoint(src, path)
        downgrade_to_v1(path, drop_prefixes=("gnn.branches.", "ophw_gnn.branches."))

        dst = self._nasflat(tiny_space, 7)
        with pytest.warns(UserWarning):
            load_checkpoint(dst, path)
        new_path = tmp_path / "upgraded.npz"
        save_checkpoint(dst, new_path)
        assert checkpoint_format_version(new_path) == 2
        clone = self._nasflat(tiny_space, 11)
        load_checkpoint(clone, new_path)  # strict: full key set present
        np.testing.assert_array_equal(
            clone.gnn.branches["gat"][0].w_p.weight.data,
            dst.gnn.branches["gat"][0].w_p.weight.data,
        )
