"""Optimizers: convergence, hyperparameter plumbing, edge cases."""
import numpy as np
import pytest

from repro.nnlib import SGD, Adam, Parameter, Tensor, mse_loss


def quadratic_step(opt, p, target=3.0):
    opt.zero_grad()
    loss = (p - target) * (p - target)
    loss.sum().backward()
    opt.step()
    return loss.sum().item()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            quadratic_step(opt, p)
        np.testing.assert_allclose(p.data, [3.0], atol=1e-3)

    def test_momentum_faster_than_plain(self):
        def run(momentum):
            p = Parameter(np.array([0.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                last = quadratic_step(opt, p)
            return last

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * Tensor([0.0])).sum().backward()
        opt.step()
        assert abs(p.data[0]) < 1.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            quadratic_step(opt, p)
        np.testing.assert_allclose(p.data, [3.0], atol=1e-2)

    def test_skips_params_without_grad(self):
        p1, p2 = Parameter(np.array([1.0])), Parameter(np.array([1.0]))
        opt = Adam([p1, p2], lr=0.1)
        (p1 * p1).sum().backward()
        opt.step()
        np.testing.assert_allclose(p2.data, [1.0])
        assert p1.data[0] != 1.0

    def test_set_lr(self):
        opt = Adam([Parameter(np.zeros(1))], lr=0.1)
        opt.set_lr(0.5)
        assert opt.lr == 0.5
        with pytest.raises(ValueError):
            opt.set_lr(-1.0)

    def test_reset_state(self):
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.1)
        quadratic_step(opt, p)
        assert opt._t == 1
        opt.reset_state()
        assert opt._t == 0
        assert np.all(opt._m[0] == 0) and np.all(opt._v[0] == 0)

    def test_decoupled_weight_decay(self):
        p = Parameter(np.array([2.0]))
        opt = Adam([p], lr=0.01, weight_decay=0.1)
        opt.zero_grad()
        (p * Tensor([0.0])).sum().backward()
        opt.step()
        assert p.data[0] < 2.0
