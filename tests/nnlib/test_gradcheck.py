"""Finite-difference gradient checks for every differentiable op.

Central differences with float64 give ~1e-7 accuracy; tolerances are set
accordingly.  This is the ground-truth test for the autodiff engine all
predictors are built on.
"""
import numpy as np
import pytest

from repro.nnlib import Tensor, concat, stack

EPS = 1e-6
RTOL = 1e-4
ATOL = 1e-6


def numeric_grad(fn, x: np.ndarray) -> np.ndarray:
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        hi = fn(x)
        flat[i] = orig - EPS
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * EPS)
    return grad


def check(build, x: np.ndarray):
    """``build`` maps a Tensor to a Tensor; compares autodiff vs numeric."""
    t = Tensor(x.copy(), requires_grad=True)
    out = build(t)
    out.sum().backward()
    num = numeric_grad(lambda arr: build(Tensor(arr)).sum().item(), x.copy())
    np.testing.assert_allclose(t.grad, num, rtol=RTOL, atol=ATOL)


RNG = np.random.default_rng(42)
X23 = RNG.normal(size=(2, 3))
XPOS = np.abs(RNG.normal(size=(2, 3))) + 0.5


@pytest.mark.parametrize(
    "build,x",
    [
        (lambda t: t + Tensor(X23 * 2), X23),
        (lambda t: t * Tensor(X23 + 2), X23),
        (lambda t: t / Tensor(XPOS), X23),
        (lambda t: Tensor(X23) / t, XPOS),
        (lambda t: t**3, X23),
        (lambda t: t.exp(), X23),
        (lambda t: t.log(), XPOS),
        (lambda t: t.sqrt(), XPOS),
        (lambda t: t.abs(), XPOS),  # away from the kink
        (lambda t: t.tanh(), X23),
        (lambda t: t.sigmoid(), X23),
        (lambda t: t.relu() * Tensor(X23), XPOS),
        (lambda t: t.leaky_relu(0.1) * Tensor(X23), XPOS),
        (lambda t: t.clip_min(0.0) * Tensor(X23), XPOS),
        (lambda t: t.softmax(axis=-1) * Tensor(X23), X23),
        (lambda t: t.log_softmax(axis=-1) * Tensor(X23), X23),
        (lambda t: t.sum(axis=0), X23),
        (lambda t: t.mean(axis=1) * Tensor(np.arange(2.0) + 1), X23),
        (lambda t: t.reshape(3, 2) * Tensor(np.arange(6.0).reshape(3, 2)), X23),
        (lambda t: t.transpose() * Tensor(np.arange(6.0).reshape(3, 2)), X23),
        (lambda t: t[0] * Tensor(np.arange(3.0)), X23),
        (lambda t: t.gather_rows(np.array([0, 1, 1])) * Tensor(np.ones((3, 3))), X23),
    ],
)
def test_unary_ops(build, x):
    check(build, x)


def test_max_gradient():
    # No ties so the subgradient is unique.
    x = np.array([[1.0, 5.0, 2.0], [7.0, 3.0, 4.0]])
    check(lambda t: t.max(axis=1) * Tensor(np.array([2.0, 3.0])), x)


def test_matmul_grads_both_sides():
    a = RNG.normal(size=(3, 4))
    b = RNG.normal(size=(4, 2))
    check(lambda t: t @ Tensor(b), a)
    check(lambda t: Tensor(a) @ t, b)


def test_matmul_batched_grads():
    a = RNG.normal(size=(2, 3, 4))
    b = RNG.normal(size=(2, 4, 2))
    check(lambda t: t @ Tensor(b), a)
    check(lambda t: Tensor(a) @ t, b)


def test_matmul_broadcast_weight_grad():
    a = RNG.normal(size=(2, 3, 4))
    w = RNG.normal(size=(4, 2))
    check(lambda t: Tensor(a) @ t, w)
    check(lambda t: t @ Tensor(w), a)


def test_broadcast_add_grad():
    bias = RNG.normal(size=(3,))
    check(lambda t: Tensor(X23) * (Tensor(X23) + t), bias)


def test_concat_grad():
    a = RNG.normal(size=(2, 2))
    check(lambda t: concat([t, Tensor(X23)], axis=1) * Tensor(np.ones((2, 5))), a)


def test_stack_grad():
    a = RNG.normal(size=(3,))
    check(lambda t: stack([t, Tensor(np.ones(3))], axis=0) * Tensor(np.arange(6.0).reshape(2, 3)), a)


def test_mlp_end_to_end_gradcheck():
    """Composite check through Linear+activation+reduction."""
    from repro.nnlib import MLP, mse_loss

    rng = np.random.default_rng(0)
    model = MLP(3, [5], 1, rng, activation="tanh")
    x = rng.normal(size=(4, 3))
    y = rng.normal(size=4)
    loss = mse_loss(model(Tensor(x)).reshape(-1), y)
    loss.backward()
    for name, p in model.named_parameters():
        analytic = p.grad.copy()
        num = np.zeros_like(p.data)
        flat, nflat = p.data.reshape(-1), num.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + EPS
            hi = mse_loss(model(Tensor(x)).reshape(-1), y).item()
            flat[i] = orig - EPS
            lo = mse_loss(model(Tensor(x)).reshape(-1), y).item()
            flat[i] = orig
            nflat[i] = (hi - lo) / (2 * EPS)
        np.testing.assert_allclose(analytic, num, rtol=1e-4, atol=1e-6, err_msg=name)
