"""Container subsystem: ModuleList/ModuleDict and recursive discovery."""
import numpy as np
import pytest

from repro.nnlib import (
    Adam,
    Linear,
    Module,
    ModuleDict,
    ModuleList,
    Parameter,
    Tensor,
    mse_loss,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestModuleList:
    def test_registers_parameters(self, rng):
        ml = ModuleList([Linear(2, 2, rng), Linear(2, 2, rng)])
        names = [n for n, _ in ml.named_parameters()]
        assert names == ["0.weight", "0.bias", "1.weight", "1.bias"]

    def test_list_protocol(self, rng):
        ml = ModuleList()
        a, b, c = Linear(2, 2, rng), Linear(2, 2, rng), Linear(2, 2, rng)
        ml.append(a)
        ml.extend([b])
        ml.insert(0, c)
        assert len(ml) == 3
        assert ml[0] is c and ml[-1] is b
        assert list(ml) == [c, a, b]
        ml[0] = a
        assert ml[0] is a

    def test_slice_returns_modulelist(self, rng):
        ml = ModuleList(Linear(2, 2, rng) for _ in range(4))
        head = ml[:2]
        assert isinstance(head, ModuleList)
        assert len(head) == 2

    def test_rejects_non_modules(self):
        with pytest.raises(TypeError, match="Module or Parameter"):
            ModuleList([42])

    def test_accepts_bare_parameters(self, rng):
        ml = ModuleList([Parameter(np.zeros(3))])
        assert [n for n, _ in ml.named_parameters()] == ["0"]

    def test_nested_modulelists(self, rng):
        nested = ModuleList([ModuleList([Linear(2, 2, rng)]), ModuleList([Linear(2, 2, rng)])])
        names = [n for n, _ in nested.named_parameters()]
        assert names == ["0.0.weight", "0.0.bias", "1.0.weight", "1.0.bias"]

    def test_train_eval_propagates(self, rng):
        ml = ModuleList([Linear(2, 2, rng)])
        ml.eval()
        assert not ml[0].training
        ml.train()
        assert ml[0].training


class TestModuleDict:
    def test_registers_parameters(self, rng):
        md = ModuleDict({"a": Linear(2, 2, rng), "b": Linear(2, 2, rng)})
        assert [n for n, _ in md.named_parameters()] == ["a.weight", "a.bias", "b.weight", "b.bias"]

    def test_mapping_protocol(self, rng):
        md = ModuleDict()
        lin = Linear(2, 2, rng)
        md["x"] = lin
        assert "x" in md and len(md) == 1
        assert md["x"] is lin
        assert list(md) == ["x"] and list(md.keys()) == ["x"]
        assert list(md.values()) == [lin]
        del md["x"]
        assert "x" not in md

    def test_preserves_insertion_order(self, rng):
        md = ModuleDict({"z": Linear(1, 1, rng), "a": Linear(1, 1, rng)})
        assert list(md) == ["z", "a"]
        assert list(md.state_dict())[:2] == ["z.weight", "z.bias"]

    def test_rejects_bad_keys(self, rng):
        md = ModuleDict()
        with pytest.raises(ValueError, match="may not contain"):
            md["a.b"] = Linear(1, 1, rng)
        with pytest.raises(ValueError, match="may not contain"):
            md["a::b"] = Linear(1, 1, rng)
        with pytest.raises(TypeError):
            md[3] = Linear(1, 1, rng)

    def test_rejects_non_modules(self):
        with pytest.raises(TypeError, match="Module or Parameter"):
            ModuleDict({"a": "not a module"})


class TestRecursiveDiscovery:
    """Arbitrary nesting of plain lists/tuples/dicts is also discovered."""

    def _model(self, rng):
        class Nested(Module):
            def __init__(self):
                super().__init__()
                self.grid = [[Linear(2, 2, rng)], [Linear(2, 2, rng), Linear(2, 2, rng)]]
                self.pair = (Linear(2, 2, rng, bias=False),)
                self.by_name = {"deep": [Parameter(np.zeros((2, 2)))]}

        return Nested()

    def test_list_of_lists(self, rng):
        names = {n for n, _ in self._model(rng).named_parameters()}
        assert {"grid.0.0.weight", "grid.1.0.weight", "grid.1.1.bias"} <= names

    def test_tuple_and_dict_members(self, rng):
        names = {n for n, _ in self._model(rng).named_parameters()}
        assert "pair.0.weight" in names
        assert "by_name.deep.0" in names

    def test_state_dict_covers_everything(self, rng):
        m = self._model(rng)
        assert set(m.state_dict()) == {n for n, _ in m.named_parameters()}
        assert len(m.state_dict()) == 8

    def test_state_dict_roundtrip(self, rng):
        m1, m2 = self._model(rng), self._model(np.random.default_rng(9))
        m2.load_state_dict(m1.state_dict())
        for (_, a), (_, b) in zip(m1.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_named_modules(self, rng):
        m = self._model(rng)
        names = dict(m.named_modules())
        assert names[""] is m
        assert {"grid.0.0", "grid.1.1", "pair.0"} <= set(names)

    def test_non_strict_load_reports_mismatches(self, rng):
        m = self._model(rng)
        state = m.state_dict()
        state.pop("pair.0.weight")
        state["extra"] = np.zeros(1)
        result = m.load_state_dict(state, strict=False)
        assert result.missing == ["pair.0.weight"]
        assert result.unexpected == ["extra"]

    def test_non_strict_load_still_checks_shapes(self, rng):
        m = self._model(rng)
        state = m.state_dict()
        state["pair.0.weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError, match="shape mismatch"):
            m.load_state_dict(state, strict=False)

    def test_failed_load_leaves_module_untouched(self, rng):
        """Shape validation runs over the whole state dict before any copy,
        so a rejected load cannot leave a half-loaded module behind."""
        m = self._model(rng)
        before = m.state_dict()
        bad = {k: np.full_like(v, 9.0) for k, v in before.items()}
        bad["pair.0.weight"] = np.zeros((5, 5))  # one mismatched shape
        with pytest.raises(ValueError, match="shape mismatch"):
            m.load_state_dict(bad)
        for key, val in m.state_dict().items():
            np.testing.assert_array_equal(val, before[key])


class TestSharedAndCyclicStructure:
    def test_tied_module_registers_once(self, rng):
        class Tied(Module):
            def __init__(self):
                super().__init__()
                self.encoder = Linear(2, 2, rng)
                self.decoder = self.encoder  # weight tying

        m = Tied()
        names = [n for n, _ in m.named_parameters()]
        # The shared Linear appears under its first name only, so the
        # optimizer holds each tensor exactly once.
        assert names == ["encoder.weight", "encoder.bias"]
        assert len(m.parameters()) == 2
        assert sum(1 for _ in m.modules()) == 2  # Tied + the one Linear

    def test_tied_parameter_registers_once(self, rng):
        class TiedParam(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones((2, 2)))
                self.w_alias = self.w

        assert [n for n, _ in TiedParam().named_parameters()] == ["w"]

    def test_back_reference_does_not_recurse_forever(self, rng):
        class Child(Module):
            def __init__(self, parent):
                super().__init__()
                self.parent = parent
                self.lin = Linear(2, 2, rng)

        class Parent(Module):
            def __init__(self):
                super().__init__()
                self.child = Child(self)

        m = Parent()
        assert [n for n, _ in m.named_parameters()] == ["child.lin.weight", "child.lin.bias"]
        m.eval()  # modules() traversal must terminate too
        assert not m.child.lin.training


class TestOptimizerThroughContainers:
    def test_adam_updates_every_nested_parameter(self, rng):
        class Tower(Module):
            def __init__(self):
                super().__init__()
                self.blocks = ModuleDict(
                    {"a": ModuleList([Linear(3, 3, rng), Linear(3, 3, rng)])}
                )

            def forward(self, x):
                for layer in self.blocks["a"]:
                    x = layer(x).relu()
                return x

        m = Tower()
        before = m.state_dict()
        assert len(before) == 4  # 2 Linears x (weight, bias), all under blocks.a.*
        opt = Adam(m.parameters(), lr=1e-2)
        x = rng.normal(size=(8, 3))
        opt.zero_grad()
        mse_loss(m(Tensor(x)).reshape(-1), np.ones(8 * 3)).backward()
        opt.step()
        after = m.state_dict()
        for key in before:
            assert not np.allclose(before[key], after[key]), f"{key} was not updated"
