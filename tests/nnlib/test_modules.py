"""Module system: registration, modes, state dicts, layer behaviour."""
import numpy as np
import pytest

from repro.nnlib import (
    MLP,
    Adam,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    Sequential,
    Tensor,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(4, 7, rng)
        out = layer(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 7)

    def test_no_bias(self, rng):
        layer = Linear(4, 7, rng, bias=False)
        assert layer.bias is None
        np.testing.assert_allclose(layer(Tensor(np.zeros((2, 4)))).numpy(), np.zeros((2, 7)))

    def test_batched_3d_input(self, rng):
        layer = Linear(4, 7, rng)
        out = layer(Tensor(np.ones((2, 5, 4))))
        assert out.shape == (2, 5, 7)


class TestMLP:
    def test_depth_and_output(self, rng):
        m = MLP(4, [8, 8], 2, rng)
        assert m(Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_unknown_activation(self, rng):
        with pytest.raises(ValueError, match="unknown activation"):
            MLP(4, [8], 1, rng, activation="swishh")

    def test_no_hidden_layers(self, rng):
        m = MLP(4, [], 2, rng)
        assert m(Tensor(np.ones((1, 4)))).shape == (1, 2)


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 6, rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 6)

    def test_out_of_range(self, rng):
        emb = Embedding(10, 6, rng)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_accumulates_per_row(self, rng):
        emb = Embedding(5, 3, rng)
        out = emb(np.array([1, 1, 2]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], 2 * np.ones(3))
        np.testing.assert_allclose(emb.weight.grad[2], np.ones(3))
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(3))


class TestLayerNorm:
    def test_normalizes_last_dim(self, rng):
        ln = LayerNorm(8)
        x = rng.normal(3.0, 5.0, size=(4, 8))
        out = ln(Tensor(x)).numpy()
        np.testing.assert_allclose(out.mean(-1), np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(out.std(-1), np.ones(4), atol=1e-3)

    def test_affine_params_learnable(self, rng):
        ln = LayerNorm(4)
        assert {"gamma", "beta"} <= {n.split(".")[-1] for n, _ in ln.named_parameters()}


class TestDropout:
    def test_eval_is_identity(self, rng):
        d = Dropout(0.5, rng)
        d.eval()
        x = np.ones((4, 4))
        np.testing.assert_allclose(d(Tensor(x)).numpy(), x)

    def test_train_scales(self, rng):
        d = Dropout(0.5, rng)
        out = d(Tensor(np.ones((100, 100)))).numpy()
        # Inverted dropout preserves the mean.
        assert abs(out.mean() - 1.0) < 0.05
        assert set(np.unique(out)) <= {0.0, 2.0}

    def test_invalid_p(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestModuleSystem:
    def test_named_parameters_nested(self, rng):
        m = MLP(2, [3], 1, rng)
        names = [n for n, _ in m.named_parameters()]
        assert len(names) == 4  # two Linears x (weight, bias)
        assert all("net.layers" in n for n in names)

    def test_parameters_in_list_attribute(self, rng):
        class WithList(Module):
            def __init__(self):
                super().__init__()
                self.layers = [Linear(2, 2, rng), Linear(2, 2, rng)]

        assert len(WithList().parameters()) == 4

    def test_state_dict_roundtrip(self, rng):
        m1 = MLP(3, [4], 1, rng)
        m2 = MLP(3, [4], 1, np.random.default_rng(99))
        m2.load_state_dict(m1.state_dict())
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(m1(x).numpy(), m2(x).numpy())

    def test_state_dict_mismatch_raises(self, rng):
        m1 = MLP(3, [4], 1, rng)
        state = m1.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            m1.load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self, rng):
        m1 = MLP(3, [4], 1, rng)
        state = m1.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            m1.load_state_dict(state)

    def test_train_eval_propagates(self, rng):
        m = Sequential(Linear(2, 2, rng), Dropout(0.5, rng))
        m.eval()
        assert not m[1].training
        m.train()
        assert m[1].training

    def test_zero_grad(self, rng):
        m = Linear(2, 2, rng)
        m(Tensor(np.ones((1, 2)))).sum().backward()
        assert m.weight.grad is not None
        m.zero_grad()
        assert m.weight.grad is None

    def test_num_parameters(self, rng):
        m = Linear(3, 4, rng)
        assert m.num_parameters() == 3 * 4 + 4

    def test_optimizer_trains_to_target(self, rng):
        m = MLP(2, [16], 1, rng)
        opt = Adam(m.parameters(), lr=1e-2)
        x = rng.normal(size=(64, 2))
        y = x[:, 0] * x[:, 1]
        from repro.nnlib import mse_loss

        first = None
        for _ in range(150):
            opt.zero_grad()
            loss = mse_loss(m(Tensor(x)).reshape(-1), y)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.2
