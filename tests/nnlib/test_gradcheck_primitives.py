"""Targeted finite-difference gradient checks for the nnlib primitives the
GNN hot path leans on (ISSUE 4 satellite): batched ``softmax(axis=-1)``
(attention rows), ``leaky_relu`` at the GAT slope, ``transpose`` with
explicit axes, multi-tensor ``concat``, and the ``_unbroadcast``
scalar-vs-batched edge cases that broadcasting gradients rely on."""
import numpy as np
import pytest

from repro.nnlib import Tensor, concat
from repro.nnlib.tensor import _unbroadcast

EPS = 1e-6
RTOL = 1e-4
ATOL = 1e-6

RNG = np.random.default_rng(7)


def numeric_grad(fn, x: np.ndarray) -> np.ndarray:
    grad = np.zeros_like(x)
    flat, gflat = x.reshape(-1), grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        hi = fn(x)
        flat[i] = orig - EPS
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * EPS)
    return grad


def check(build, x: np.ndarray):
    t = Tensor(x.copy(), requires_grad=True)
    build(t).sum().backward()
    num = numeric_grad(lambda arr: build(Tensor(arr)).sum().item(), x.copy())
    np.testing.assert_allclose(t.grad, num, rtol=RTOL, atol=ATOL)


class TestSoftmax:
    def test_batched_attention_rows(self):
        # The GAT shape: (B, N, N) attention logits, softmax over the last
        # axis.  Weight by a random tensor so the gradient is non-trivial
        # (a bare sum of softmax outputs has near-zero gradient).
        x = RNG.normal(size=(2, 3, 3))
        w = Tensor(RNG.normal(size=(2, 3, 3)))
        check(lambda t: t.softmax(axis=-1) * w, x)

    def test_masked_logits_like_gat(self):
        # Softmax after the -1e9 mask trick must still backprop cleanly
        # through the surviving entries.
        x = RNG.normal(size=(2, 4))
        mask = np.array([[1.0, 1.0, 0.0, 1.0], [1.0, 0.0, 1.0, 1.0]])
        w = Tensor(RNG.normal(size=(2, 4)))
        check(lambda t: (t * Tensor(mask) + Tensor((1 - mask) * -1e9)).softmax(axis=-1) * w, x)

    def test_rows_sum_to_one(self):
        out = Tensor(RNG.normal(size=(3, 5))).softmax(axis=-1).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(3), atol=1e-12)


class TestLeakyRelu:
    @pytest.mark.parametrize("slope", [0.0, 0.01, 0.2, 0.9])
    def test_slopes(self, slope):
        # Away from the kink at 0 so central differences are valid.
        x = RNG.normal(size=(3, 4))
        x[np.abs(x) < 0.1] += 0.5
        w = Tensor(RNG.normal(size=(3, 4)))
        check(lambda t: t.leaky_relu(slope) * w, x)

    def test_negative_side_scales_by_slope(self):
        t = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        t.leaky_relu(0.2).sum().backward()
        np.testing.assert_allclose(t.grad, [0.2, 1.0])


class TestTranspose:
    def test_batched_axes_like_gat_scores(self):
        # (B, N, F) -> (B, F, N): the attention-score transpose.
        x = RNG.normal(size=(2, 3, 4))
        w = Tensor(RNG.normal(size=(2, 4, 3)))
        check(lambda t: t.transpose(0, 2, 1) * w, x)

    def test_full_reversal_default(self):
        x = RNG.normal(size=(2, 3, 4))
        w = Tensor(RNG.normal(size=(4, 3, 2)))
        check(lambda t: t.transpose() * w, x)

    def test_axes_as_tuple(self):
        x = RNG.normal(size=(2, 3, 4))
        w = Tensor(RNG.normal(size=(3, 2, 4)))
        check(lambda t: t.transpose((1, 0, 2)) * w, x)


class TestConcat:
    def test_three_way_feature_concat(self):
        # The NASFLAT trunk concatenates [node ‖ refined ‖ supplementary].
        a = RNG.normal(size=(2, 3))
        b = Tensor(RNG.normal(size=(2, 2)))
        c = Tensor(RNG.normal(size=(2, 4)))
        w = Tensor(RNG.normal(size=(2, 9)))
        check(lambda t: concat([t, b, c], axis=-1) * w, a)

    def test_gradient_flows_to_every_input(self):
        parts = [Tensor(RNG.normal(size=(2, 2)), requires_grad=True) for _ in range(3)]
        (concat(parts, axis=0) * Tensor(np.arange(12.0).reshape(6, 2))).sum().backward()
        for i, p in enumerate(parts):
            np.testing.assert_allclose(
                p.grad, np.arange(12.0).reshape(6, 2)[2 * i : 2 * i + 2]
            )

    def test_middle_position_batch_axis(self):
        a = RNG.normal(size=(2, 3))
        left, right = Tensor(RNG.normal(size=(1, 3))), Tensor(RNG.normal(size=(2, 3)))
        w = Tensor(RNG.normal(size=(5, 3)))
        check(lambda t: concat([left, t, right], axis=0) * w, a)


class TestUnbroadcast:
    """Direct unit coverage of the gradient-unbroadcasting rules."""

    def test_identity_when_shapes_match(self):
        g = RNG.normal(size=(3, 4))
        assert _unbroadcast(g, (3, 4)) is g

    def test_scalar_target_sums_everything(self):
        g = RNG.normal(size=(2, 3, 4))
        out = _unbroadcast(g, ())
        assert out.shape == ()
        np.testing.assert_allclose(out, g.sum())

    def test_prepended_axes_are_summed(self):
        g = RNG.normal(size=(5, 3))
        np.testing.assert_allclose(_unbroadcast(g, (3,)), g.sum(axis=0))

    def test_kept_size1_axes_sum_with_keepdims(self):
        g = RNG.normal(size=(4, 3))
        np.testing.assert_allclose(_unbroadcast(g, (4, 1)), g.sum(axis=1, keepdims=True))
        np.testing.assert_allclose(_unbroadcast(g, (1, 3)), g.sum(axis=0, keepdims=True))

    def test_mixed_prepend_and_size1(self):
        g = RNG.normal(size=(2, 5, 1, 3))
        out = _unbroadcast(g, (1, 1, 3))
        assert out.shape == (1, 1, 3)
        np.testing.assert_allclose(out, g.sum(axis=(0, 1)).reshape(1, 1, 3))


class TestBroadcastGradEndToEnd:
    """scalar-vs-batched broadcasting through real ops (gradcheck)."""

    def test_scalar_tensor_times_batch(self):
        s = np.array(1.7)
        w = Tensor(RNG.normal(size=(3, 4)))
        check(lambda t: t * w + w, s)

    def test_row_bias_against_batch(self):
        bias = RNG.normal(size=(4,))
        batch = Tensor(RNG.normal(size=(3, 4)))
        check(lambda t: (batch + t) * batch, bias)

    def test_column_vs_row_outer_broadcast(self):
        col = RNG.normal(size=(3, 1))
        row = Tensor(RNG.normal(size=(1, 4)))
        check(lambda t: t * row, col)

    def test_python_scalar_operand(self):
        x = RNG.normal(size=(2, 3))
        check(lambda t: (2.0 * t + 1.0) / 3.0, x)

    def test_grad_shapes_match_leaves(self):
        s = Tensor(np.array(2.0), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        (s * b).sum().backward()
        assert s.grad.shape == ()
        assert b.grad.shape == (2, 3)


class TestSubNeg:
    """sub/neg are true primitives now (one tape node, one traced step) —
    their gradients must match central differences and broadcast rules."""

    def test_sub_broadcast_gradcheck(self):
        x = RNG.normal(size=(3, 4))
        bias = Tensor(RNG.normal(size=(4,)))
        w = Tensor(RNG.normal(size=(3, 4)))
        check(lambda t: (t - bias) * w, x)

    def test_sub_right_operand_gradcheck(self):
        rhs = RNG.normal(size=(4,))
        batch = Tensor(RNG.normal(size=(3, 4)))
        w = Tensor(RNG.normal(size=(3, 4)))
        check(lambda t: (batch - t) * w, rhs)

    def test_rsub_and_neg_gradcheck(self):
        x = RNG.normal(size=(2, 3))
        w = Tensor(RNG.normal(size=(2, 3)))
        check(lambda t: (1.5 - t) * w + (-t), x)

    def test_matches_add_neg_composition_bitwise(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        (a - b).sum().backward()
        ga, gb = a.grad.copy(), b.grad.copy()
        a.zero_grad(); b.zero_grad()
        (a + b * -1.0).sum().backward()
        np.testing.assert_array_equal(ga, a.grad)
        np.testing.assert_array_equal(gb, b.grad)


class TestLossGradchecks:
    """Finite-difference checks for the training losses the compiled
    backward traces through (ISSUE 5 satellite)."""

    def _fd_loss_grad(self, loss_fn, pred: np.ndarray) -> np.ndarray:
        return numeric_grad(lambda arr: loss_fn(Tensor(arr)).item(), pred.copy())

    def test_mse_loss(self):
        pred = RNG.normal(size=6)
        target = RNG.normal(size=6)
        t = Tensor(pred.copy(), requires_grad=True)
        from repro.nnlib import mse_loss

        mse_loss(t, target).backward()
        num = self._fd_loss_grad(lambda p: mse_loss(p, target), pred)
        np.testing.assert_allclose(t.grad, num, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("margin", [0.05, 0.1, 0.5])
    def test_pairwise_hinge_loss(self, margin):
        from repro.nnlib import pairwise_hinge_loss

        # Spread predictions so no pairwise difference sits within FD reach
        # of the hinge kink at (pred_i - pred_j) == margin.
        pred = np.array([0.9, -0.4, 0.31, -1.2, 0.02])
        target = np.array([2.0, 0.5, 1.5, 0.1, 1.0])
        t = Tensor(pred.copy(), requires_grad=True)
        pairwise_hinge_loss(t, target, margin=margin).backward()
        num = self._fd_loss_grad(lambda p: pairwise_hinge_loss(p, target, margin=margin), pred)
        np.testing.assert_allclose(t.grad, num, rtol=RTOL, atol=ATOL)

    def test_pairwise_hinge_degenerate_batches(self):
        from repro.nnlib import pairwise_hinge_loss

        single = Tensor(np.array([1.0]), requires_grad=True)
        loss = pairwise_hinge_loss(single, np.array([3.0]))
        assert loss.item() == 0.0
        loss.backward()
        np.testing.assert_array_equal(single.grad, [0.0])
        tied = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = pairwise_hinge_loss(tied, np.array([5.0, 5.0]))
        assert loss.item() == 0.0
