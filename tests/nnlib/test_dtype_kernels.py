"""Per-kernel f32/f64 property tests for the mixed-precision plan policy.

Every op family that the tracer compiles gets the same treatment: trace
the expression twice — once at the default f64, once at f32 — replay both
on unit-scale random inputs, and bound the relative error by the family's
expected single-precision behaviour (elementwise ~1e-6, GEMMs scaled by
the contraction dimension, data movement exact).  The last class pins the
policy's accumulation guarantee: scalar reductions run with an f64
accumulator even inside f32 plans, demonstrated on a cancellation batch
that a naive f32 sum gets exactly wrong.
"""
import numpy as np
import pytest

from repro.nnlib import Linear, Tensor, concat, mse_loss, trace, trace_training_step
from repro.nnlib.ir import PlanIRError, check_plan_dtype
from repro.nnlib.trace import _base_dtype

#: Elementwise single-precision rounding: a handful of ulps at unit scale.
EW_RTOL = 1e-5
#: GEMM error grows ~sqrt(K) in the contraction dim; K<=64 here.
MM_RTOL = 1e-4


def _pair(fn, inputs):
    """Trace ``fn`` at both dtypes and replay on the same inputs."""
    p64 = trace(fn, inputs, dtype="f64")
    p32 = trace(fn, inputs, dtype="f32")
    assert p64.dtype == "f64" and p32.dtype == "f32"
    return np.asarray(p64.replay(inputs)), np.asarray(p32.replay(inputs))


def _check(fn, inputs, rtol=EW_RTOL, atol=1e-6):
    ref, got = _pair(fn, inputs)
    np.testing.assert_allclose(
        got.astype(np.float64), ref, rtol=rtol, atol=atol
    )
    return ref, got


RNG = np.random.default_rng(1234)
X = RNG.normal(size=(8, 6))
Y = RNG.normal(size=(8, 6))
POS = np.abs(RNG.normal(size=(8, 6))) + 0.5  # safe for log/div/pow


class TestElementwiseFamilies:
    @pytest.mark.parametrize(
        "name,fn",
        [
            ("add", lambda i: Tensor(i["x"]) + Tensor(i["y"])),
            ("sub", lambda i: Tensor(i["x"]) - Tensor(i["y"])),
            ("mul", lambda i: Tensor(i["x"]) * Tensor(i["y"])),
            ("neg", lambda i: -Tensor(i["x"])),
        ],
    )
    def test_ring_ops(self, name, fn):
        _check(fn, {"x": X, "y": Y})

    def test_div(self):
        _check(lambda i: Tensor(i["x"]) / Tensor(i["p"]), {"x": X, "p": POS})

    def test_pow(self):
        _check(lambda i: Tensor(i["p"]) ** 1.7, {"p": POS})

    @pytest.mark.parametrize(
        "name,fn",
        [
            ("exp", lambda i: Tensor(i["x"]).exp()),
            ("log", lambda i: Tensor(i["p"]).log()),
            ("tanh", lambda i: Tensor(i["x"]).tanh()),
            ("abs", lambda i: Tensor(i["x"]).abs()),
            ("sigmoid", lambda i: Tensor(i["x"]).sigmoid()),
            ("relu", lambda i: Tensor(i["x"]).relu()),
            ("leaky_relu", lambda i: Tensor(i["x"]).leaky_relu(0.01)),
            ("clip_min", lambda i: Tensor(i["x"]).clip_min(-0.25)),
        ],
    )
    def test_transcendental_and_threshold(self, name, fn):
        _check(fn, {"x": X, "p": POS})

    def test_scalar_broadcast_stays_f32(self):
        # A 0-d f64 constant (like the hinge margin) must not promote the
        # whole elementwise op back to f64 inside an f32 plan.
        plan = trace(lambda i: Tensor(i["x"]) * 2.5 + 0.125, {"x": X}, dtype="f32")
        out = plan.replay({"x": X})
        assert out.dtype == np.float32
        np.testing.assert_allclose(out.astype(np.float64), X * 2.5 + 0.125, rtol=EW_RTOL)


class TestContractionFamilies:
    def test_matmul(self):
        a = RNG.normal(size=(16, 64))
        b = RNG.normal(size=(64, 12))
        _check(
            lambda i: Tensor(i["a"]) @ Tensor(i["b"]),
            {"a": a, "b": b},
            rtol=MM_RTOL,
            atol=1e-5,
        )

    def test_linear_layer_chain(self):
        lin = Linear(6, 4, np.random.default_rng(5))
        _check(
            lambda i: lin(Tensor(i["x"])).relu(),
            {"x": X},
            rtol=MM_RTOL,
            atol=1e-5,
        )

    @pytest.mark.parametrize("axis", [-1, 0])
    def test_softmax_families(self, axis):
        _check(lambda i: Tensor(i["x"]).softmax(axis=axis), {"x": X})
        _check(lambda i: Tensor(i["x"]).log_softmax(axis=axis), {"x": X})


class TestDataMovementIsExact:
    """Shape ops move bits, they don't round: the f32 result must equal the
    f64 result cast to f32 exactly."""

    @pytest.mark.parametrize(
        "name,fn",
        [
            ("reshape", lambda i: (Tensor(i["x"]) * 1.0).reshape(48)),
            ("transpose", lambda i: (Tensor(i["x"]) * 1.0).transpose()),
            ("getitem", lambda i: (Tensor(i["x"]) * 1.0)[2:5]),
            ("concat", lambda i: concat([Tensor(i["x"]) * 1.0, Tensor(i["y"]) * 1.0], axis=1)),
        ],
    )
    def test_movement(self, name, fn):
        ref, got = _pair(fn, {"x": X, "y": Y})
        np.testing.assert_array_equal(got, ref.astype(np.float32))

    def test_gather_rows(self):
        table = Linear(4, 5, np.random.default_rng(6)).weight
        idx = np.array([0, 2, 2, 3])
        plan64 = trace(lambda i: table.gather_rows(i["idx"]) * 1.0, {"idx": idx}, params=[table])
        plan32 = trace(
            lambda i: table.gather_rows(i["idx"]) * 1.0, {"idx": idx}, params=[table], dtype="f32"
        )
        ref = plan64.replay({"idx": idx})
        got = plan32.replay({"idx": idx})
        np.testing.assert_array_equal(got, ref.astype(np.float32))


class TestReductionAccumulation:
    """The policy's one deliberate f64 island inside f32 plans: scalar
    reduction buffers stay f64 and numpy accumulates into them in f64."""

    def test_sum_reduces_in_f64(self):
        # 1e8 and 1.0 are exactly representable in f32, but their sum is
        # not: a naive f32 left-to-right sum of [1e8, 1, -1e8] rounds
        # 1e8 + 1 back to 1e8 and returns exactly 0.0.  The plan must
        # return 1.0 because the reduction writes an f64 accumulator.
        x = np.array([1e8, 1.0, -1e8])
        naive = np.float32(0.0)
        for v in x.astype(np.float32):
            naive += v
        assert naive == 0.0  # the failure mode being guarded against
        plan = trace(lambda i: Tensor(i["x"]).sum(), {"x": x}, dtype="f32")
        assert plan.replay({"x": x}) == 1.0

    def test_loss_reduction_in_training_plan_is_f64(self):
        # Absorption batch routed through a real training step: one row
        # contributes a squared error of 2^26, 1024 rows contribute 1.0
        # each.  A naive f32 running sum absorbs every small term (ulp at
        # 2^26 is 8.0), landing 1.5e-5 away from the truth; the plan's
        # f64 accumulator keeps them, leaving only the ~3e-8 rounding of
        # the f32 mean-scale constant.
        lin = Linear(1, 1, np.random.default_rng(7), bias=False)
        lin.weight.data = np.array([[1.0]])
        x = np.full((1025, 1), 1.0)
        x[0, 0] = 8192.0  # 8192^2 == 2^26, exact in f32
        inputs = {"x": x, "target": np.zeros((1025, 1))}
        sq = (x[:, 0] ** 2).astype(np.float32)
        naive = np.float32(0.0)
        for v in sq:  # the failure mode being guarded against
            naive += v
        assert naive == 2.0**26  # all 1024 small terms absorbed
        step = trace_training_step(
            lambda i: lin(Tensor(i["x"])), mse_loss, inputs,
            params=lin.parameters(), dtype="f32",
        )
        assert step.dtype == "f32"
        loss, _ = step.replay(inputs)
        expected = (2.0**26 + 1024.0) / 1025.0
        rel = abs(loss - expected) / expected
        assert rel < 1e-6, rel  # naive f32 accumulation sits at 1.5e-5

    def test_max_reduction(self):
        _check(lambda i: Tensor(i["x"]).max(axis=1), {"x": X})

    def test_mean_matches_f64_at_unit_scale(self):
        _check(lambda i: Tensor(i["x"]).mean(axis=0), {"x": X})


class TestPolicyMechanics:
    def test_base_dtype_rule(self):
        # Pooled buffers: f32 for real tensors, f64 for the scalar tail.
        assert _base_dtype("f32", 128) == np.float32
        assert _base_dtype("f32", 2) == np.float32
        assert _base_dtype("f32", 1) == np.float64
        assert _base_dtype("f32", 0) == np.float64
        assert _base_dtype("f64", 128) == np.float64

    def test_check_plan_dtype(self):
        assert check_plan_dtype("f64") == "f64"
        assert check_plan_dtype("f32") == "f32"
        with pytest.raises(PlanIRError):
            check_plan_dtype("f16")

    def test_unknown_dtype_rejected_at_trace(self):
        with pytest.raises(PlanIRError):
            trace(lambda i: Tensor(i["x"]) * 1.0, {"x": X}, dtype="bf16")

    def test_f32_plan_buffers_are_half_the_bytes(self):
        lin = Linear(6, 4, np.random.default_rng(8))
        p64 = trace(lambda i: lin(Tensor(i["x"])).relu(), {"x": X})
        p32 = trace(lambda i: lin(Tensor(i["x"])).relu(), {"x": X}, dtype="f32")
        assert p32.buffer_bytes < p64.buffer_bytes

    def test_int_and_bool_leaves_pass_through(self):
        # Only f64 leaves are cast; index inputs keep their integer dtype.
        table = Linear(4, 5, np.random.default_rng(9)).weight
        idx = np.array([1, 3], dtype=np.int64)
        plan = trace(
            lambda i: table.gather_rows(i["idx"]) * 1.0, {"idx": idx}, params=[table], dtype="f32"
        )
        out = plan.replay({"idx": np.array([0, 3], dtype=np.int64)})
        np.testing.assert_array_equal(out, table.data[[0, 3]].astype(np.float32))

    def test_param_mutation_recast(self):
        # Optimizers reassign p.data; the cast cache must notice and re-cast
        # rather than replay the stale f32 image.
        lin = Linear(6, 4, np.random.default_rng(10))
        plan = trace(lambda i: lin(Tensor(i["x"])), {"x": X}, module=lin, dtype="f32")
        before = plan.replay({"x": X}).copy()
        for p in lin.parameters():
            p.data = p.data * 2.0
        after = plan.replay({"x": X})
        assert not np.allclose(before, after)
        np.testing.assert_allclose(
            after.astype(np.float64), lin(Tensor(X)).numpy(), rtol=MM_RTOL, atol=1e-5
        )
