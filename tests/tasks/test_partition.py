"""Algorithm 1: automated device-set partitioning."""
import numpy as np
import pytest

from repro.tasks import correlation_graph, partition_devices


@pytest.fixture(scope="module")
def small_ds():
    from repro.hardware.dataset import LatencyDataset
    from repro.spaces import GenericCellSpace

    return LatencyDataset(GenericCellSpace("nb101", table_size=300))


DEVICES = [
    "1080ti_1",
    "titanxp_1",
    "1080ti_256",
    "gold_6226",
    "pixel3",
    "pixel2",
    "raspi4",
    "fpga",
    "eyeriss",
    "edge_tpu_int8",
]


class TestCorrelationGraph:
    def test_complete_graph_with_negative_weights(self, nb201_dataset):
        g = correlation_graph(nb201_dataset, DEVICES[:4], sample=300)
        assert g.number_of_edges() == 6
        for _, _, data in g.edges(data=True):
            assert data["weight"] == pytest.approx(-data["correlation"])


class TestPartition:
    def test_requested_sizes(self, nb201_dataset):
        train, test = partition_devices(nb201_dataset, DEVICES, m=5, n=3, sample=300)
        assert len(train) == 5 and len(test) == 3
        assert not set(train) & set(test)

    def test_all_members_from_input(self, nb201_dataset):
        train, test = partition_devices(nb201_dataset, DEVICES, m=4, n=4, sample=300)
        assert set(train) | set(test) <= set(DEVICES)

    def test_lower_intra_correlation_than_random(self, nb201_dataset):
        """Algorithm 1's objective: pools with low internal correlation."""
        train, test = partition_devices(nb201_dataset, DEVICES, m=5, n=5, sample=500)

        def intra(devs):
            c = nb201_dataset.correlation_matrix(list(devs), sample=500)
            return float(np.mean(c[np.triu_indices(len(devs), 1)]))

        algo = (intra(train) + intra(test)) / 2
        rng = np.random.default_rng(0)
        rand_vals = []
        for _ in range(10):
            perm = rng.permutation(DEVICES)
            rand_vals.append((intra(perm[:5]) + intra(perm[5:])) / 2)
        assert algo <= np.mean(rand_vals)

    def test_invalid_sizes(self, nb201_dataset):
        with pytest.raises(ValueError):
            partition_devices(nb201_dataset, DEVICES, m=8, n=8)
        with pytest.raises(ValueError):
            partition_devices(nb201_dataset, DEVICES, m=0, n=2)

    def test_deterministic_given_seed(self, nb201_dataset):
        a = partition_devices(nb201_dataset, DEVICES, m=4, n=3, seed=5, sample=300)
        b = partition_devices(nb201_dataset, DEVICES, m=4, n=3, seed=5, sample=300)
        assert a == b
