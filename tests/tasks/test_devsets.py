"""Device-set task definitions mirror the paper's tables."""
import pytest

from repro.hardware.registry import devices_for_space
from repro.tasks import TASKS, Task, get_task, fbnet_tasks, nasbench201_tasks


class TestRoster:
    def test_twelve_tasks(self):
        assert len(TASKS) == 12

    def test_six_per_space(self):
        assert len(nasbench201_tasks()) == 6
        assert len(fbnet_tasks()) == 6

    def test_pools_disjoint(self):
        for task in TASKS.values():
            assert not set(task.train_devices) & set(task.test_devices), task.name

    def test_all_devices_exist_for_their_space(self):
        for task in TASKS.values():
            available = set(devices_for_space(task.space))
            missing = (set(task.train_devices) | set(task.test_devices)) - available
            assert not missing, f"{task.name}: {missing}"

    def test_paper_pool_sizes(self):
        # Table 24-26 rosters.
        assert len(TASKS["ND"].train_devices) == 9 and len(TASKS["ND"].test_devices) == 6
        assert len(TASKS["N4"].train_devices) == 10 and len(TASKS["N4"].test_devices) == 3
        assert len(TASKS["NA"].train_devices) == 17 and len(TASKS["NA"].test_devices) == 3
        assert len(TASKS["FA"].train_devices) == 15 and len(TASKS["FA"].test_devices) == 4

    def test_n2_tests_on_accelerators(self):
        t = TASKS["N2"]
        assert all("ti" in d or "titan" in d for d in t.train_devices)
        assert "edge_tpu_int8" in t.test_devices

    def test_get_task_unknown(self):
        with pytest.raises(KeyError):
            get_task("N9")

    def test_overlapping_pools_rejected(self):
        with pytest.raises(ValueError):
            Task("bad", "nasbench201", ("pixel3",), ("pixel3",))


class TestTaskDifficulty:
    """The adversarial tasks must actually be adversarial in our simulator."""

    def test_nd_easier_than_n2(self, nb201_dataset):
        import numpy as np

        def mean_train_test_corr(task):
            devs = list(task.train_devices) + list(task.test_devices)
            c = nb201_dataset.correlation_matrix(devs, sample=800)
            k = len(task.train_devices)
            return float(np.mean(c[:k, k:]))

        assert mean_train_test_corr(TASKS["ND"]) > mean_train_test_corr(TASKS["N2"])
        assert mean_train_test_corr(TASKS["ND"]) > mean_train_test_corr(TASKS["NA"])
