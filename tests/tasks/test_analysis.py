"""Task-difficulty analysis (the paper's Tables 21-22 quantities)."""
import numpy as np
import pytest

from repro.tasks import TASKS
from repro.tasks.analysis import TaskDifficulty, analyze_task, difficulty_report


@pytest.fixture(scope="module")
def nd_difficulty():
    return analyze_task(TASKS["ND"], sample=600)


@pytest.fixture(scope="module")
def n2_difficulty():
    return analyze_task(TASKS["N2"], sample=600)


class TestAnalyzeTask:
    def test_bounds(self, nd_difficulty):
        d = nd_difficulty
        assert -1.0 <= d.train_test_min <= d.train_test_mean <= d.train_test_max <= 1.0

    def test_best_source_covers_all_test_devices(self, nd_difficulty):
        assert set(nd_difficulty.best_source_correlation) == set(TASKS["ND"].test_devices)

    def test_best_source_at_least_mean(self, nd_difficulty):
        # Each device's best source correlates at least as well as average.
        assert min(nd_difficulty.best_source_correlation.values()) >= nd_difficulty.train_test_min

    def test_paper_difficulty_ordering(self, nd_difficulty, n2_difficulty):
        """ND is the legacy easy set; N2 (GPUs -> edge accelerators) is hard."""
        assert nd_difficulty.train_test_mean > n2_difficulty.train_test_mean

    def test_hardness_buckets(self):
        easy = TaskDifficulty("x", 0.9, 0.8, 1.0, 0.9, 0.9, {})
        hard = TaskDifficulty("y", 0.3, 0.1, 0.5, 0.4, 0.4, {})
        assert easy.hardness == "easy" and hard.hardness == "hard"

    def test_deterministic(self):
        a = analyze_task(TASKS["N4"], sample=400, seed=3)
        b = analyze_task(TASKS["N4"], sample=400, seed=3)
        assert a == b


class TestReport:
    def test_sorted_hardest_first(self):
        report = difficulty_report([TASKS["ND"], TASKS["N2"]], sample=400)
        lines = report.splitlines()
        assert lines[0].startswith("task")
        assert lines[1].split()[0] == "N2"  # harder task listed first
        assert lines[2].split()[0] == "ND"
