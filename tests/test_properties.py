"""Property-based tests (hypothesis) on core data structures and invariants."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.eval.metrics import geometric_mean, spearman
from repro.nas.pareto import pareto_front
from repro.nnlib import Tensor, concat, pairwise_hinge_loss
from repro.nnlib.tensor import _unbroadcast
from repro.spaces.base import longest_path_length

finite_floats = st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False)


class TestTensorProperties:
    @given(hnp.arrays(np.float64, hnp.array_shapes(max_dims=3, max_side=5), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_add_commutes(self, x):
        a, b = Tensor(x), Tensor(x * 0.5)
        np.testing.assert_allclose((a + b).numpy(), (b + a).numpy())

    @given(hnp.arrays(np.float64, hnp.array_shapes(max_dims=2, max_side=6), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_sum_grad_is_ones(self, x):
        t = Tensor(x, requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(x))

    @given(
        hnp.arrays(
            np.float64, st.tuples(st.integers(2, 6), st.integers(2, 6)), elements=finite_floats
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_softmax_simplex(self, x):
        s = Tensor(x).softmax(axis=-1).numpy()
        assert (s >= 0).all()
        np.testing.assert_allclose(s.sum(-1), np.ones(len(x)), rtol=1e-9)

    @given(
        hnp.arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 4)), elements=finite_floats),
        st.integers(1, 3),
    )
    @settings(max_examples=50, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, x, reps):
        broadcast = np.broadcast_to(x, (reps,) + x.shape)
        result = _unbroadcast(np.array(broadcast), x.shape)
        np.testing.assert_allclose(result, x * reps)

    @given(st.lists(hnp.arrays(np.float64, (2, 3), elements=finite_floats), min_size=2, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_concat_preserves_content(self, arrays):
        out = concat([Tensor(a) for a in arrays], axis=1).numpy()
        np.testing.assert_allclose(out, np.concatenate(arrays, axis=1))


class TestLossProperties:
    @given(hnp.arrays(np.float64, st.integers(2, 12), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_hinge_nonnegative(self, target):
        pred = Tensor(np.zeros_like(target))
        assert pairwise_hinge_loss(pred, target).item() >= 0.0

    @given(
        hnp.arrays(np.float64, st.integers(2, 10), elements=st.floats(-10, 10, allow_nan=False)),
    )
    @settings(max_examples=50, deadline=None)
    def test_hinge_zero_iff_margin_ranked(self, target):
        # Predicting an amplified version of the target always satisfies a
        # small margin (strict inequalities scale up).
        pred = Tensor(target * 100.0)
        unique_gaps = np.abs(np.subtract.outer(target, target))
        min_gap = unique_gaps[unique_gaps > 0].min() if (unique_gaps > 0).any() else None
        if min_gap is not None and min_gap * 100 > 0.1:
            assert pairwise_hinge_loss(pred, target, margin=0.1).item() == pytest.approx(0.0)


class TestMetricsProperties:
    @given(st.lists(st.floats(0.01, 1.0), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_geometric_mean_bounds(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9

    @given(
        hnp.arrays(
            np.float64,
            st.integers(3, 30),
            # Quantize to avoid float-precision tie collapses under the
            # affine transform (ties must stay ties, gaps stay gaps).
            elements=st.floats(-100, 100, allow_nan=False).map(lambda v: round(v, 3)),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_spearman_invariant_to_monotone_transform(self, x):
        y = np.arange(len(x), dtype=np.float64)
        a = spearman(x, y)
        b = spearman(3.0 * x + 7.0, y)  # strictly monotone affine transform
        assert a == pytest.approx(b, abs=1e-9)


class TestParetoProperties:
    @given(
        hnp.arrays(np.float64, st.integers(1, 30), elements=st.floats(0.1, 100, allow_nan=False)),
        st.randoms(),
    )
    @settings(max_examples=50, deadline=None)
    def test_front_is_mutually_nondominating(self, lat, rnd):
        acc = np.array([rnd.uniform(50, 80) for _ in lat])
        front = pareto_front(lat, acc)
        assert len(front) >= 1
        for i in front:
            for j in front:
                if i != j:
                    dominates = lat[j] <= lat[i] and acc[j] >= acc[i] and (
                        lat[j] < lat[i] or acc[j] > acc[i]
                    )
                    assert not dominates

    @given(
        hnp.arrays(np.float64, st.integers(1, 20), elements=st.floats(0.1, 100, allow_nan=False)),
    )
    @settings(max_examples=50, deadline=None)
    def test_every_point_dominated_by_front(self, lat):
        acc = 100.0 - lat  # anti-correlated: all points on the front
        front = set(pareto_front(lat, acc).tolist())
        for k in range(len(lat)):
            if k not in front:
                assert any(
                    lat[f] <= lat[k] and acc[f] >= acc[k] for f in front
                )


class TestGraphProperties:
    @given(st.integers(2, 8), st.randoms())
    @settings(max_examples=50, deadline=None)
    def test_longest_path_bounded_by_nodes(self, n, rnd):
        adj = np.triu(np.array([[rnd.random() < 0.5 for _ in range(n)] for _ in range(n)]), k=1)
        depth = longest_path_length(adj.astype(np.int8))
        assert 0 <= depth <= n - 1


class TestSamplerProperties:
    @given(st.integers(1, 30), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_sampler_contract(self, k, seed):
        from repro.samplers import RandomSampler
        from repro.spaces import GenericCellSpace

        space = GenericCellSpace("nb101", table_size=300)
        idx = RandomSampler().select(space, k, np.random.default_rng(seed))
        assert len(idx) == k == len(np.unique(idx))
        assert idx.min() >= 0 and idx.max() < 300
