"""Cross-module integration tests: the paper's workflows end to end."""
import numpy as np
import pytest

from repro import get_task
from repro.eval import spearman
from repro.hardware.dataset import LatencyDataset
from repro.nas import MetaD2ASimulator, latency_constrained_search
from repro.predictors.training import FinetuneConfig, PretrainConfig, predict_latency
from repro.transfer import NASFLATPipeline, PipelineConfig


@pytest.fixture(scope="module")
def mini_cfg():
    return PipelineConfig(
        sampler="random",
        supplementary=None,
        pretrain=PretrainConfig(samples_per_device=64, epochs=6, batch_size=16),
        finetune=FinetuneConfig(epochs=20),
        n_test=400,
    )


@pytest.mark.slow
class TestNB201TaskEndToEnd:
    def test_n1_transfer_beats_chance_comfortably(self, mini_cfg):
        pipe = NASFLATPipeline(get_task("N1"), mini_cfg, seed=0)
        pipe.pretrain()
        res = pipe.transfer("1080ti_1")
        assert res.spearman > 0.6

    def test_easy_task_beats_hard_task(self, mini_cfg):
        rhos = {}
        for name, dev in (("ND", "gold_6226"), ("N2", "edge_tpu_int8")):
            pipe = NASFLATPipeline(get_task(name), mini_cfg, seed=0)
            pipe.pretrain()
            rhos[name] = pipe.transfer(dev).spearman
        assert rhos["ND"] > rhos["N2"]


@pytest.mark.slow
class TestNASEndToEnd:
    def test_predictor_driven_search_steers_latency(self, mini_cfg):
        task = get_task("ND")
        pipe = NASFLATPipeline(task, mini_cfg, seed=0)
        pipe.pretrain()
        device = "pixel2"
        res = pipe.transfer(device)
        ds = pipe.dataset
        gen = MetaD2ASimulator(pipe.space)
        scorer = lambda idx: predict_latency(pipe.last_predictor, device, idx, supplementary=pipe._supp)
        rng = np.random.default_rng(0)
        measured = rng.choice(len(ds), 20, replace=False)
        lat = ds.latencies(device)
        tight_c = float(np.quantile(lat, 0.2))
        loose_c = float(np.quantile(lat, 0.95))
        tight = latency_constrained_search(
            ds, device, tight_c, gen, scorer, measured, rng, build_seconds=res.finetune_seconds
        )
        loose = latency_constrained_search(
            ds, device, loose_c, gen, scorer, measured, rng, build_seconds=res.finetune_seconds
        )
        # An imperfect predictor (mini-scale pretrain, rho ~0.8) cannot hit
        # the constraint exactly, but it must steer the search: the tightly
        # constrained pick must be much faster, at some accuracy cost.
        assert tight.latency_ms < loose.latency_ms
        assert tight.latency_ms <= float(np.quantile(lat, 0.8))
        assert loose.accuracy >= tight.accuracy - 0.5
        assert tight.cost.total_seconds > 0
        assert tight.accuracy > 55.0


class TestDeterminism:
    def test_same_seed_same_results(self, mini_cfg):
        def run():
            pipe = NASFLATPipeline(get_task("N4"), mini_cfg, seed=7)
            pipe.pretrain()
            return pipe.transfer("1080ti_1").spearman

        assert run() == pytest.approx(run())
