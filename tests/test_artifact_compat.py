"""Golden-artifact compatibility gate (CI ``artifact-compat`` job).

The committed ``tests/fixtures/golden_*_v<N>.npz`` artifacts were compiled
by an earlier build at plan-IR format ``<N>``.  This suite loads them with
*today's* code and replays them against an in-process trace of the same
(deterministically rebuilt) model.  If the IR schema changes shape without
a ``PLAN_FORMAT_VERSION`` bump, the load or the replay comparison breaks
here — before any user's saved plan does.
"""
import json
from pathlib import Path

import numpy as np
import pytest

from repro.nnlib import mse_loss, trace, trace_training_step
from repro.nnlib.ir import ir_from_payload, load_plan, read_plan_metadata
from repro.nnlib.serialization import (
    PLAN_FORMAT_VERSION,
    load_plan_archive,
    plan_format_version,
)
from tests.fixtures.golden_plan_model import build_model, forward_inputs, training_inputs

FIXTURES = Path(__file__).resolve().parent / "fixtures"
GOLDEN_FWD = FIXTURES / f"golden_fwd_v{PLAN_FORMAT_VERSION}.npz"
GOLDEN_TRAIN = FIXTURES / f"golden_train_v{PLAN_FORMAT_VERSION}.npz"
GOLDEN_FWD_F32 = FIXTURES / f"golden_fwd_f32_v{PLAN_FORMAT_VERSION}.npz"
GOLDEN_TRAIN_F32 = FIXTURES / f"golden_train_f32_v{PLAN_FORMAT_VERSION}.npz"


class TestGoldenArtifacts:
    def test_fixtures_exist_for_current_format(self):
        # A PLAN_FORMAT_VERSION bump must ship regenerated fixtures
        # (tests/fixtures/gen_golden_plan.py) in the same change.
        assert GOLDEN_FWD.is_file(), f"missing {GOLDEN_FWD.name}"
        assert GOLDEN_TRAIN.is_file(), f"missing {GOLDEN_TRAIN.name}"

    def test_version_tags(self):
        assert plan_format_version(GOLDEN_FWD) == PLAN_FORMAT_VERSION
        assert plan_format_version(GOLDEN_TRAIN) == PLAN_FORMAT_VERSION
        assert read_plan_metadata(GOLDEN_FWD)["fixture"] == "golden_fwd"
        assert read_plan_metadata(GOLDEN_TRAIN)["fixture"] == "golden_train"

    def test_forward_replay_matches_in_process_trace(self):
        model = build_model()
        inputs = forward_inputs()
        golden = load_plan(GOLDEN_FWD, module=model)
        fresh = trace(model._forward_core, inputs, module=model)
        np.testing.assert_array_equal(golden.replay(inputs), fresh.replay(inputs))

    def test_training_replay_matches_in_process_trace(self):
        model = build_model()
        inputs = training_inputs()
        golden = load_plan(GOLDEN_TRAIN, module=model)
        fresh = trace_training_step(model, mse_loss, inputs)
        l_gold, g_gold = golden.replay(inputs)
        l_fresh, g_fresh = fresh.replay(inputs)
        assert l_gold == l_fresh
        assert len(g_gold) == len(g_fresh)
        for a, b in zip(g_gold, g_fresh):
            np.testing.assert_array_equal(a, b)

    def test_forward_replay_is_finite_and_shaped(self):
        # Defense in depth: even if the in-process trace changed, the loaded
        # artifact must still produce a sane result on its own.
        model = build_model()
        golden = load_plan(GOLDEN_FWD, module=model)
        out = golden.replay(forward_inputs())
        assert out.shape == (6, 1)
        assert np.all(np.isfinite(out))


class TestDtypeCompat:
    """The plan ``dtype`` field is serialized additively (same
    ``PLAN_FORMAT_VERSION``): artifacts written before it existed must
    keep loading as f64, and the committed f32 goldens must round-trip as
    f32.  The committed f64 fixtures double as the real pre-dtype
    artifacts — they were written by a build without the field."""

    def test_committed_f64_goldens_are_really_dtype_less(self):
        # Guard the guard: if someone regenerates the f64 fixtures with a
        # dtype-aware build, this compat class stops testing anything.
        for path in (GOLDEN_FWD, GOLDEN_TRAIN):
            payload, _, _, _ = load_plan_archive(path)
            assert "dtype" not in payload, f"{path.name} was regenerated"

    def test_dtype_less_artifacts_load_as_f64(self):
        model = build_model()
        assert load_plan(GOLDEN_FWD, module=model).dtype == "f64"
        assert load_plan(GOLDEN_TRAIN, module=build_model()).dtype == "f64"

    def test_stripping_the_dtype_key_still_loads_as_f64(self):
        # Synthetic pre-dtype payload: the defaulting must not depend on
        # which build wrote the fixture.
        payload, consts, _, _ = load_plan_archive(GOLDEN_FWD_F32)
        assert payload["dtype"] == "f32"
        stripped = json.loads(json.dumps(payload))
        del stripped["dtype"]
        assert ir_from_payload(stripped, consts).dtype == "f64"

    def test_f32_fixtures_exist_for_current_format(self):
        assert GOLDEN_FWD_F32.is_file(), f"missing {GOLDEN_FWD_F32.name}"
        assert GOLDEN_TRAIN_F32.is_file(), f"missing {GOLDEN_TRAIN_F32.name}"
        assert plan_format_version(GOLDEN_FWD_F32) == PLAN_FORMAT_VERSION
        assert plan_format_version(GOLDEN_TRAIN_F32) == PLAN_FORMAT_VERSION
        assert read_plan_metadata(GOLDEN_FWD_F32)["fixture"] == "golden_fwd_f32"
        assert read_plan_metadata(GOLDEN_FWD_F32)["dtype"] == "f32"

    def test_f32_forward_golden_replays_like_a_fresh_f32_trace(self):
        model = build_model()
        inputs = forward_inputs()
        golden = load_plan(GOLDEN_FWD_F32, module=model)
        assert golden.dtype == "f32"
        fresh = trace(model._forward_core, inputs, module=model, dtype="f32")
        np.testing.assert_array_equal(golden.replay(inputs), fresh.replay(inputs))

    def test_f32_training_golden_replays_like_a_fresh_f32_trace(self):
        model = build_model()
        inputs = training_inputs()
        golden = load_plan(GOLDEN_TRAIN_F32, module=model)
        assert golden.dtype == "f32"
        fresh = trace_training_step(model, mse_loss, inputs, dtype="f32")
        l_gold, g_gold = golden.replay(inputs)
        l_fresh, g_fresh = fresh.replay(inputs)
        assert l_gold == l_fresh
        for a, b in zip(g_gold, g_fresh):
            np.testing.assert_array_equal(a, b)

    def test_f32_golden_tracks_the_f64_golden(self):
        # Cross-precision sanity: the two committed artifact families
        # describe the same model, so their replays agree to f32 rounding.
        model = build_model()
        inputs = forward_inputs()
        out64 = load_plan(GOLDEN_FWD, module=model).replay(inputs)
        out32 = load_plan(GOLDEN_FWD_F32, module=build_model()).replay(inputs)
        np.testing.assert_allclose(out32.astype(np.float64), out64, rtol=1e-5, atol=1e-6)

    def test_unknown_dtype_rejected_with_a_clear_error(self):
        from repro.nnlib.ir import PlanIRError, validate_ir

        payload, consts, _, _ = load_plan_archive(GOLDEN_FWD_F32)
        mutated = json.loads(json.dumps(payload))
        mutated["dtype"] = "f16"
        with pytest.raises(PlanIRError, match="dtype"):
            validate_ir(ir_from_payload(mutated, consts))
