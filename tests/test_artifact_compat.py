"""Golden-artifact compatibility gate (CI ``artifact-compat`` job).

The committed ``tests/fixtures/golden_*_v<N>.npz`` artifacts were compiled
by an earlier build at plan-IR format ``<N>``.  This suite loads them with
*today's* code and replays them against an in-process trace of the same
(deterministically rebuilt) model.  If the IR schema changes shape without
a ``PLAN_FORMAT_VERSION`` bump, the load or the replay comparison breaks
here — before any user's saved plan does.
"""
from pathlib import Path

import numpy as np
import pytest

from repro.nnlib import mse_loss, trace, trace_training_step
from repro.nnlib.ir import load_plan, read_plan_metadata
from repro.nnlib.serialization import PLAN_FORMAT_VERSION, plan_format_version
from tests.fixtures.golden_plan_model import build_model, forward_inputs, training_inputs

FIXTURES = Path(__file__).resolve().parent / "fixtures"
GOLDEN_FWD = FIXTURES / f"golden_fwd_v{PLAN_FORMAT_VERSION}.npz"
GOLDEN_TRAIN = FIXTURES / f"golden_train_v{PLAN_FORMAT_VERSION}.npz"


class TestGoldenArtifacts:
    def test_fixtures_exist_for_current_format(self):
        # A PLAN_FORMAT_VERSION bump must ship regenerated fixtures
        # (tests/fixtures/gen_golden_plan.py) in the same change.
        assert GOLDEN_FWD.is_file(), f"missing {GOLDEN_FWD.name}"
        assert GOLDEN_TRAIN.is_file(), f"missing {GOLDEN_TRAIN.name}"

    def test_version_tags(self):
        assert plan_format_version(GOLDEN_FWD) == PLAN_FORMAT_VERSION
        assert plan_format_version(GOLDEN_TRAIN) == PLAN_FORMAT_VERSION
        assert read_plan_metadata(GOLDEN_FWD)["fixture"] == "golden_fwd"
        assert read_plan_metadata(GOLDEN_TRAIN)["fixture"] == "golden_train"

    def test_forward_replay_matches_in_process_trace(self):
        model = build_model()
        inputs = forward_inputs()
        golden = load_plan(GOLDEN_FWD, module=model)
        fresh = trace(model._forward_core, inputs, module=model)
        np.testing.assert_array_equal(golden.replay(inputs), fresh.replay(inputs))

    def test_training_replay_matches_in_process_trace(self):
        model = build_model()
        inputs = training_inputs()
        golden = load_plan(GOLDEN_TRAIN, module=model)
        fresh = trace_training_step(model, mse_loss, inputs)
        l_gold, g_gold = golden.replay(inputs)
        l_fresh, g_fresh = fresh.replay(inputs)
        assert l_gold == l_fresh
        assert len(g_gold) == len(g_fresh)
        for a, b in zip(g_gold, g_fresh):
            np.testing.assert_array_equal(a, b)

    def test_forward_replay_is_finite_and_shaped(self):
        # Defense in depth: even if the in-process trace changed, the loaded
        # artifact must still produce a sane result on its own.
        model = build_model()
        golden = load_plan(GOLDEN_FWD, module=model)
        out = golden.replay(forward_inputs())
        assert out.shape == (6, 1)
        assert np.all(np.isfinite(out))
