"""Shared fixtures.

Heavy shared objects (spaces, latency datasets) are session-scoped; tests
must treat them as read-only.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.dataset import LatencyDataset
from repro.spaces import FBNetSpace, GenericCellSpace, NASBench201Space


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def nb201():
    return NASBench201Space()


@pytest.fixture(scope="session")
def fbnet_small():
    """A 400-architecture FBNet table — fast to featurize and encode."""
    return FBNetSpace(table_size=400)


@pytest.fixture(scope="session")
def tiny_space():
    """A small generic cell space for predictor/encoder unit tests."""
    return GenericCellSpace("nb101", table_size=300)


@pytest.fixture(scope="session")
def nb201_dataset(nb201):
    return LatencyDataset(nb201)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_space):
    return LatencyDataset(tiny_space)
