"""Encoder behaviour: shapes, caching, error paths, and informativeness."""
import numpy as np
import pytest

from repro.encodings import (
    AdjOpEncoder,
    Arch2VecEncoder,
    CATEEncoder,
    CAZEncoder,
    ZCPEncoder,
    get_encoding,
)
from repro.encodings.base import ENCODER_FACTORIES, clear_encoding_cache


class TestAdjOp:
    def test_shape_and_determinism(self, tiny_space):
        enc = AdjOpEncoder().fit(tiny_space)
        out = enc.encode([0, 1, 2])
        assert out.shape == (3, enc.dim)
        np.testing.assert_allclose(out, AdjOpEncoder().fit(tiny_space).encode([0, 1, 2]))

    def test_encode_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            AdjOpEncoder().encode([0])

    def test_distinct_archs_distinct_codes(self, tiny_space):
        enc = AdjOpEncoder().fit(tiny_space)
        all_codes = enc.encode(np.arange(tiny_space.num_architectures()))
        assert len(np.unique(all_codes, axis=0)) == tiny_space.num_architectures()


class TestZCP:
    def test_dim_is_13(self, tiny_space):
        enc = ZCPEncoder().fit(tiny_space)
        assert enc.dim == 13
        assert enc.encode([0]).shape == (1, 13)


class TestArch2Vec:
    def test_shape(self, tiny_space):
        enc = Arch2VecEncoder(epochs=3, train_samples=100).fit(tiny_space, seed=0)
        out = enc.encode(np.arange(10))
        assert out.shape == (10, 32)

    def test_latent_not_collapsed(self, tiny_space):
        enc = Arch2VecEncoder(epochs=8, train_samples=200).fit(tiny_space, seed=0)
        out = enc.encode(np.arange(tiny_space.num_architectures()))
        # Per-arch variation must exist (the encoder is not constant).
        assert np.unique(out.round(6), axis=0).shape[0] > 0.5 * len(out)

    def test_seed_determinism(self, tiny_space):
        a = Arch2VecEncoder(epochs=2, train_samples=64).fit(tiny_space, seed=1).encode([0, 1])
        b = Arch2VecEncoder(epochs=2, train_samples=64).fit(tiny_space, seed=1).encode([0, 1])
        np.testing.assert_allclose(a, b)


class TestCATE:
    def test_shape(self, tiny_space):
        enc = CATEEncoder(steps=30, train_samples=100).fit(tiny_space, seed=0)
        assert enc.encode([0, 1]).shape == (2, 32)

    def test_computationally_similar_archs_closer(self, tiny_space):
        """CATE's defining property: FLOPs-similar archs cluster."""
        from repro.hardware.features import compute_features

        enc = CATEEncoder(steps=150, train_samples=300).fit(tiny_space, seed=0)
        feats = compute_features(tiny_space)
        order = np.argsort(feats.total_flops)
        codes = enc.encode(order)
        n = len(order)
        # Distance between FLOPs-neighbours vs random pairs.
        near = np.linalg.norm(codes[:-1] - codes[1:], axis=1).mean()
        rng = np.random.default_rng(0)
        ri, rj = rng.integers(0, n, 500), rng.integers(0, n, 500)
        far = np.linalg.norm(codes[ri] - codes[rj], axis=1).mean()
        assert near < far


class TestCAZ:
    def test_concatenates_components(self, tiny_space):
        enc = CAZEncoder()
        enc.fit(tiny_space, seed=0)
        assert enc.dim == 32 + 32 + 13


class TestCache:
    def test_get_encoding_memoizes(self, tiny_space):
        a = get_encoding(tiny_space, "adjop")
        b = get_encoding(tiny_space, "adjop")
        assert a is b

    def test_unknown_encoder(self, tiny_space):
        with pytest.raises(KeyError, match="unknown encoder"):
            get_encoding(tiny_space, "word2vec")

    def test_factories_registered(self):
        assert {"adjop", "zcp", "arch2vec", "cate", "caz"} <= set(ENCODER_FACTORIES)
